package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// Dettaint is the nondeterminism taint pass. It tracks values derived from
// nondeterministic sources — wall-clock time, the global math/rand and
// crypto/rand generators, map iteration order, pointer identity (%p and
// unsafe conversions), and multi-case select arrival order — through
// assignments, struct fields, and calls across the whole module, and
// reports any tainted value flowing into a determinism sink: wire
// encoding, checkpoint encoding, flight-recorder events, or a function
// annotated "//dettaint:sink" (crosscheck-compared outputs).
//
// The analysis is flow-insensitive within a function and interprocedural
// via per-function summaries (which parameters flow to results, into
// struct fields, or into sinks) iterated to a fixpoint. Two deliberate
// cleansing rules keep it usable: sorting a slice clears map-order taint
// (sort.* / slices.Sort*), and storing into a map clears map-order taint
// (map contents are unordered; order nondeterminism only matters when it
// reaches an ordered encoding). Values drawn from seeded *rand.Rand
// generators are NOT tainted — seeded streams are the module's
// deterministic randomness plane.
var Dettaint = &Analyzer{
	Name: "dettaint",
	Doc: "tracks nondeterministic values (time, global rand, map order, pointer " +
		"identity, select order) and reports flows into wire/checkpoint/recorder " +
		"encodings and crosscheck-compared outputs",
	RunModule: runDettaint,
}

type taintKind uint8

const (
	taintTime taintKind = 1 << iota
	taintRand
	taintMapOrder
	taintPtr
	taintSelect
)

func (t taintKind) String() string {
	var parts []string
	if t&taintTime != 0 {
		parts = append(parts, "wall-clock")
	}
	if t&taintRand != 0 {
		parts = append(parts, "global-rand")
	}
	if t&taintMapOrder != 0 {
		parts = append(parts, "map-order")
	}
	if t&taintPtr != 0 {
		parts = append(parts, "pointer-identity")
	}
	if t&taintSelect != 0 {
		parts = append(parts, "select-order")
	}
	return strings.Join(parts, "+")
}

// dtSummary is the interprocedural summary of one function.
type dtSummary struct {
	ret        taintKind         // inherent taint of any result
	retParams  uint64            // param bits whose taint flows to results
	sinkParams uint64            // param bits that reach a sink inside
	callsSink  bool              // function (transitively) emits a sink event
	fieldFlows map[string]uint64 // field key → param bits stored into it
}

// isSinkPkg reports whether a generic encoder call (encoding/json,
// encoding/binary, encoding/gob) inside pkg is a determinism sink: the
// root package's checkpoint encoding, the wire format, and the flight
// recorder's dump format. JSON written elsewhere (status endpoints, trace
// export) legitimately carries timings.
func isSinkPkg(pkg *Package) bool {
	path := strings.TrimSuffix(pkg.Types.Path(), "_test")
	if pkg.ModulePath != "" && path == pkg.ModulePath {
		return true
	}
	switch pkgTail(path) {
	case "wire", "recorder":
		return true
	}
	return false
}

// builtinSinks are module functions whose arguments must be deterministic,
// keyed by function identity.
var builtinSinks = map[string]string{
	"visibility/internal/wire..Encode":              "wire encoding",
	"visibility/internal/obs/recorder.Recorder.Log": "recorder event",
}

// encoderFuncs are the stdlib entry points treated as generic encoder
// sinks inside builtinSinkPkgs.
func isEncoderFunc(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "encoding/json":
		return fn.Name() == "Marshal" || fn.Name() == "MarshalIndent" || fn.Name() == "Encode"
	case "encoding/binary":
		return fn.Name() == "Write"
	case "encoding/gob":
		return fn.Name() == "Encode"
	}
	return false
}

type dtCtx struct {
	mp          *ModulePass
	sums        map[string]*dtSummary
	fieldTaint  map[string]taintKind // "pkg.Struct.Field" → taint
	globalTaint map[string]taintKind // "pkg.Var" → taint
	sinks       map[string]string    // //dettaint:sink functions → description
	reported    map[token.Pos]bool   // dedupe: expressions get re-evaluated
	firstBump   map[string]token.Pos // DETTAINT_DEBUG: first site raising each field's taint
	changed     bool
}

func runDettaint(mp *ModulePass) error {
	c := &dtCtx{
		mp:          mp,
		sums:        make(map[string]*dtSummary),
		fieldTaint:  make(map[string]taintKind),
		globalTaint: make(map[string]taintKind),
		sinks:       make(map[string]string),
		reported:    make(map[token.Pos]bool),
		firstBump:   make(map[string]token.Pos),
	}
	c.collectSinkAnnotations()
	// Interprocedural fixpoint: summaries and global field taint only grow.
	for i := 0; i < 20; i++ {
		c.changed = false
		c.analyzeAll(false)
		if !c.changed {
			break
		}
	}
	c.analyzeAll(true)
	if os.Getenv("DETTAINT_DEBUG") != "" {
		for _, k := range sortedTaintKeys(c.fieldTaint) {
			fmt.Fprintf(os.Stderr, "dettaint: field %s: %s (first at %s)\n", k, c.fieldTaint[k], mp.Fset.Position(c.firstBump[k]))
		}
		for _, k := range sortedTaintKeys(c.globalTaint) {
			fmt.Fprintf(os.Stderr, "dettaint: global %s: %s\n", k, c.globalTaint[k])
		}
		keys := make([]string, 0, len(c.sums))
		for k, s := range c.sums {
			if s.sinkParams != 0 {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(os.Stderr, "dettaint: sink-flow %s params %b\n", k, c.sums[k].sinkParams)
		}
	}
	return nil
}

func (c *dtCtx) collectSinkAnnotations() {
	for _, pkg := range c.mp.Pkgs {
		path := pkg.Types.Path()
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, cm := range fd.Doc.List {
					if strings.HasPrefix(cm.Text, "//dettaint:sink") {
						c.sinks[declKey(path, fd)] = fd.Name.Name
					}
				}
			}
		}
	}
}

// isTestFile reports whether f was parsed from a _test.go file. Test code
// is excluded from the taint analysis entirely: determinism is a property
// of production runs (crosscheck compares production outputs), and tests
// deliberately drive module APIs with global-rand fuzz inputs — letting
// their assignments into the shared field-taint tables saturates the
// whole module.
func (c *dtCtx) isTestFile(f *ast.File) bool {
	return strings.HasSuffix(c.mp.Fset.Position(f.Package).Filename, "_test.go")
}

func (c *dtCtx) analyzeAll(report bool) {
	for _, pkg := range c.mp.Pkgs {
		// Entry-point binaries (cmd/*, examples/*) are out of scope: they
		// are not crosschecked and their display loops (ranging result
		// maps for printing) would otherwise poison the module-wide field
		// tables. The determinism invariant lives in the library packages.
		if pkg.Types.Name() == "main" {
			continue
		}
		path := pkg.Types.Path()
		for _, f := range pkg.Files {
			if c.isTestFile(f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				c.analyzeFunc(pkg, path, fd, report)
			}
		}
	}
}

func (c *dtCtx) summaryFor(key string) *dtSummary {
	s, ok := c.sums[key]
	if !ok {
		s = &dtSummary{fieldFlows: make(map[string]uint64)}
		c.sums[key] = s
	}
	return s
}

func (c *dtCtx) bumpField(key string, t taintKind) {
	c.bumpFieldAt(key, t, token.NoPos)
}

func (c *dtCtx) bumpFieldAt(key string, t taintKind, pos token.Pos) {
	if os.Getenv("DETTAINT_DEBUG") != "" && pos.IsValid() {
		if _, ok := c.firstBump[key]; !ok && c.fieldTaint[key]|t != c.fieldTaint[key] {
			c.firstBump[key] = pos
		}
	}
	if t == 0 {
		return
	}
	if c.fieldTaint[key]|t != c.fieldTaint[key] {
		c.fieldTaint[key] |= t
		c.changed = true
	}
}

func (c *dtCtx) bumpGlobal(key string, t taintKind) {
	if t == 0 {
		return
	}
	if c.globalTaint[key]|t != c.globalTaint[key] {
		c.globalTaint[key] |= t
		c.changed = true
	}
}

// dtFunc is the per-function analysis state.
type dtFunc struct {
	c       *dtCtx
	pkg     *Package
	key     string
	sum     *dtSummary
	report  bool
	vars    map[types.Object]taintKind
	masks   map[types.Object]uint64 // param-bit masks carried by locals
	results []types.Object          // named results, for bare returns
	mapDep  int                     // map-range nesting depth
	lits    map[*ast.FuncLit]bool   // literals being analyzed (cycle guard)
}

func (c *dtCtx) analyzeFunc(pkg *Package, path string, fd *ast.FuncDecl, report bool) {
	key := declKey(path, fd)
	a := &dtFunc{
		c: c, pkg: pkg, key: key, sum: c.summaryFor(key), report: report,
		vars: make(map[types.Object]taintKind), masks: make(map[types.Object]uint64),
		lits: make(map[*ast.FuncLit]bool),
	}
	bit := 0
	seed := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			for _, name := range fld.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					a.masks[obj] = 1 << uint(bit)
				}
				bit++
			}
			if len(fld.Names) == 0 {
				bit++
			}
		}
	}
	seed(fd.Recv)
	seed(fd.Type.Params)
	if fd.Type.Results != nil {
		for _, fld := range fd.Type.Results.List {
			for _, name := range fld.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					a.results = append(a.results, obj)
				}
			}
		}
	}
	// Two local passes: flow-insensitive taint accumulates, and statements
	// later in the body can taint variables read earlier.
	a.stmts(fd.Body.List)
	a.stmts(fd.Body.List)
	for _, obj := range a.results {
		a.retTaint(a.vars[obj], a.masks[obj])
	}
}

func (a *dtFunc) retTaint(t taintKind, mask uint64) {
	if a.sum.ret|t != a.sum.ret {
		a.sum.ret |= t
		a.c.changed = true
	}
	if a.sum.retParams|mask != a.sum.retParams {
		a.sum.retParams |= mask
		a.c.changed = true
	}
}

func (a *dtFunc) sinkFlow(mask uint64) {
	if a.sum.sinkParams|mask != a.sum.sinkParams {
		a.sum.sinkParams |= mask
		a.c.changed = true
	}
}

func (a *dtFunc) stmts(list []ast.Stmt) {
	for _, s := range list {
		a.stmt(s)
	}
}

func (a *dtFunc) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		a.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						t, m := a.taintOf(vs.Values[i])
						a.setVar(name, t, m)
					} else if len(vs.Values) == 1 {
						t, m := a.taintOf(vs.Values[0])
						a.setVar(name, t, m)
					}
				}
			}
		}
	case *ast.ExprStmt:
		a.taintOf(s.X)
	case *ast.SendStmt:
		a.taintOf(s.Value)
	case *ast.IncDecStmt:
	case *ast.GoStmt:
		a.taintOf(s.Call)
	case *ast.DeferStmt:
		a.taintOf(s.Call)
	case *ast.ReturnStmt:
		if len(s.Results) == 0 {
			for _, obj := range a.results {
				a.retTaint(a.vars[obj], a.masks[obj])
			}
			return
		}
		for _, r := range s.Results {
			t, m := a.taintOf(r)
			a.retTaint(t, m)
		}
	case *ast.BlockStmt:
		a.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			a.stmt(s.Init)
		}
		a.taintOf(s.Cond)
		a.stmt(s.Body)
		if s.Else != nil {
			a.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			a.stmt(s.Init)
		}
		if s.Post != nil {
			a.stmt(s.Post)
		}
		a.stmt(s.Body)
	case *ast.RangeStmt:
		rt, rm := a.taintOf(s.X)
		overMap := false
		if tv := a.pkg.Info.TypeOf(s.X); tv != nil {
			if _, ok := tv.Underlying().(*types.Map); ok {
				overMap = true
			}
		}
		// Loop variables are NOT map-order tainted as values: the key set
		// of a map is deterministic, so each key/value seen is a
		// deterministic datum — only the ORDER of loop-body executions is
		// nondeterministic. Order becomes observable through
		// order-sensitive accumulation (append, string/float compound
		// assignment — handled under mapDep) or by emitting sink events
		// inside the body (handled in call via callsSink).
		for _, v := range []ast.Expr{s.Key, s.Value} {
			if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
				a.setVar(id, rt, rm)
			}
		}
		if overMap {
			a.mapDep++
		}
		a.stmt(s.Body)
		if overMap {
			a.mapDep--
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			a.stmt(s.Init)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				a.stmts(cl.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				a.stmts(cl.Body)
			}
		}
	case *ast.SelectStmt:
		multi := len(s.Body.List) >= 2
		for _, cc := range s.Body.List {
			cl, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			if cl.Comm != nil {
				a.stmt(cl.Comm)
				if multi {
					// Which ready case won is scheduler-dependent.
					if as, ok := cl.Comm.(*ast.AssignStmt); ok {
						for _, lhs := range as.Lhs {
							if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
								a.setVar(id, taintSelect, 0)
							}
						}
					}
				}
			}
			a.stmts(cl.Body)
		}
	case *ast.LabeledStmt:
		a.stmt(s.Stmt)
	}
}

func (a *dtFunc) setVar(id *ast.Ident, t taintKind, mask uint64) {
	obj := a.pkg.Info.Defs[id]
	if obj == nil {
		obj = a.pkg.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	a.vars[obj] |= t
	a.masks[obj] |= mask
	// Writes to package-level variables publish taint module-wide.
	if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil &&
		v.Parent() == v.Pkg().Scope() {
		a.c.bumpGlobal(v.Pkg().Path()+"."+v.Name(), t)
	}
}

func (a *dtFunc) assign(s *ast.AssignStmt) {
	var rts []taintKind
	var rms []uint64
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		t, m := a.taintOf(s.Rhs[0])
		for range s.Lhs {
			rts = append(rts, t)
			rms = append(rms, m)
		}
	} else {
		for _, r := range s.Rhs {
			t, m := a.taintOf(r)
			rts = append(rts, t)
			rms = append(rms, m)
		}
	}
	for i, lhs := range s.Lhs {
		if i >= len(rts) {
			break
		}
		t, m := rts[i], rms[i]
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			// Compound assignment: accumulation order matters for strings
			// and floats built inside a map range.
			if a.mapDep > 0 {
				if tv := a.pkg.Info.TypeOf(lhs); tv != nil {
					b, ok := tv.Underlying().(*types.Basic)
					if ok && b.Info()&(types.IsString|types.IsFloat) != 0 {
						t |= taintMapOrder
					}
				}
			}
		}
		a.store(lhs, t, m)
	}
}

// store writes taint into an lvalue.
func (a *dtFunc) store(lhs ast.Expr, t taintKind, mask uint64) {
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		a.setVar(l, t, mask)
	case *ast.SelectorExpr:
		if key, ok := a.selFieldKey(l); ok {
			a.c.bumpFieldAt(key, t, l.Pos())
			if mask != 0 {
				if a.sum.fieldFlows[key]|mask != a.sum.fieldFlows[key] {
					a.sum.fieldFlows[key] |= mask
					a.c.changed = true
				}
			}
			return
		}
		// Package-level var through a selector (pkg.Var = x).
		if v, ok := a.pkg.Info.Uses[l.Sel].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			a.c.bumpGlobal(v.Pkg().Path()+"."+v.Name(), t)
		}
	case *ast.IndexExpr:
		// Storing into a map is order-insensitive; the taint only matters
		// again if the map is iterated, which re-taints.
		if tv := a.pkg.Info.TypeOf(l.X); tv != nil {
			if _, ok := tv.Underlying().(*types.Map); ok {
				t &^= taintMapOrder
			}
		}
		a.store(l.X, t, mask)
	case *ast.StarExpr:
		a.store(l.X, t, mask)
	case *ast.ParenExpr:
		a.store(l.X, t, mask)
	}
}

func (a *dtFunc) selFieldKey(sel *ast.SelectorExpr) (string, bool) {
	s, ok := a.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	k := namedKeyOf(s.Recv())
	if k == "" {
		return "", false
	}
	return k + "." + sel.Sel.Name, true
}

// structTaint unions the global taint of t's direct fields, for struct
// values handed whole to an encoder.
func (a *dtFunc) structTaint(t types.Type) taintKind {
	key := namedKeyOf(t)
	if key == "" {
		return 0
	}
	var out taintKind
	for fk, ft := range a.c.fieldTaint {
		if strings.HasPrefix(fk, key+".") {
			out |= ft
		}
	}
	return out
}

// taintOf evaluates the taint and param-flow mask of an expression.
func (a *dtFunc) taintOf(e ast.Expr) (taintKind, uint64) {
	switch e := e.(type) {
	case *ast.BasicLit:
		return 0, 0
	case *ast.Ident:
		obj := a.pkg.Info.Uses[e]
		if obj == nil {
			obj = a.pkg.Info.Defs[e]
		}
		if obj == nil {
			return 0, 0
		}
		t := a.vars[obj]
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && !v.IsField() &&
			v.Parent() == v.Pkg().Scope() {
			t |= a.c.globalTaint[v.Pkg().Path()+"."+v.Name()]
		}
		return t, a.masks[obj]
	case *ast.SelectorExpr:
		if key, ok := a.selFieldKey(e); ok {
			// Field-level precision: reading a field yields that field's
			// taint, not the whole struct's — one nondeterministic field
			// in a widely-shared object must not taint every read of its
			// siblings. The base's param mask still flows (a sink inside
			// a callee reached through a param's field is a param flow).
			_, bm := a.taintOf(e.X)
			return a.c.fieldTaint[key], bm
		}
		if v, ok := a.pkg.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return a.c.globalTaint[v.Pkg().Path()+"."+v.Name()], 0
		}
		return 0, 0
	case *ast.CallExpr:
		return a.call(e)
	case *ast.FuncLit:
		return a.litTaint(e)
	case *ast.BinaryExpr:
		lt, lm := a.taintOf(e.X)
		rt, rm := a.taintOf(e.Y)
		return lt | rt, lm | rm
	case *ast.UnaryExpr:
		return a.taintOf(e.X)
	case *ast.StarExpr:
		return a.taintOf(e.X)
	case *ast.ParenExpr:
		return a.taintOf(e.X)
	case *ast.IndexExpr:
		return a.taintOf(e.X)
	case *ast.IndexListExpr:
		return a.taintOf(e.X)
	case *ast.SliceExpr:
		return a.taintOf(e.X)
	case *ast.TypeAssertExpr:
		return a.taintOf(e.X)
	case *ast.KeyValueExpr:
		return a.taintOf(e.Value)
	case *ast.CompositeLit:
		var t taintKind
		var m uint64
		structKey := ""
		if tt := a.pkg.Info.TypeOf(e); tt != nil {
			if _, isStruct := tt.Underlying().(*types.Struct); isStruct {
				structKey = namedKeyOf(tt)
			}
		}
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				vt, vm := a.taintOf(kv.Value)
				if id, ok := kv.Key.(*ast.Ident); ok && structKey != "" {
					// Keyed struct literal: the taint lives on the field,
					// not the whole value (see the selector case).
					fkey := structKey + "." + id.Name
					a.c.bumpFieldAt(fkey, vt, kv.Pos())
					if vm != 0 && a.sum.fieldFlows[fkey]|vm != a.sum.fieldFlows[fkey] {
						a.sum.fieldFlows[fkey] |= vm
						a.c.changed = true
					}
					continue
				}
				t |= vt
				m |= vm
				continue
			}
			et, em := a.taintOf(el)
			t |= et
			m |= em
		}
		return t, m
	}
	return 0, 0
}

// litTaint analyzes a function literal in the enclosing environment
// (captures share taint state) and returns the taint of its results.
func (a *dtFunc) litTaint(lit *ast.FuncLit) (taintKind, uint64) {
	if a.lits[lit] {
		return 0, 0
	}
	a.lits[lit] = true
	defer delete(a.lits, lit)
	var t taintKind
	var m uint64
	a.stmts(lit.Body.List)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, r := range ret.Results {
				rt, rm := a.taintOf(r)
				t |= rt
				m |= rm
			}
		}
		return true
	})
	return t, m
}

// resolvedFunc returns the *types.Func a call expression statically
// resolves to, or nil for func-value calls and conversions.
func (a *dtFunc) resolvedFunc(fun ast.Expr) *types.Func {
	for {
		switch x := fun.(type) {
		case *ast.ParenExpr:
			fun = x.X
			continue
		case *ast.IndexExpr:
			fun = x.X
			continue
		case *ast.IndexListExpr:
			fun = x.X
			continue
		}
		break
	}
	var id *ast.Ident
	switch x := fun.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	fn, _ := a.pkg.Info.Uses[id].(*types.Func)
	return fn
}

func (a *dtFunc) call(call *ast.CallExpr) (taintKind, uint64) {
	// Type conversion?
	if tv, ok := a.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		var t taintKind
		var m uint64
		if len(call.Args) == 1 {
			t, m = a.taintOf(call.Args[0])
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
				t |= taintPtr
			}
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.Uintptr {
				if at := a.pkg.Info.TypeOf(call.Args[0]); at != nil {
					if bb, ok := at.Underlying().(*types.Basic); ok && bb.Kind() == types.UnsafePointer {
						t |= taintPtr
					}
				}
			}
		}
		return t, m
	}

	fn := a.resolvedFunc(call.Fun)

	// Builtins.
	if fn == nil {
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, isB := a.pkg.Info.Uses[id].(*types.Builtin); isB {
				var t taintKind
				var m uint64
				for _, arg := range call.Args {
					at, am := a.taintOf(arg)
					t |= at
					m |= am
				}
				if id.Name == "append" && a.mapDep > 0 {
					// Appending inside a map range accumulates in
					// iteration order.
					t |= taintMapOrder
				}
				if id.Name == "len" || id.Name == "cap" {
					return 0, 0
				}
				return t, m
			}
		}
	}

	var argT []taintKind
	var argM []uint64
	var allT taintKind
	var allM uint64
	hasRecv := false
	// Receiver is bit 0 for method calls, matching the summary seeding.
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			hasRecv = true
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				t, m := a.taintOf(sel.X)
				argT = append(argT, t)
				argM = append(argM, m)
				allT |= t
				allM |= m
			} else {
				argT = append(argT, 0)
				argM = append(argM, 0)
			}
		}
	}
	for _, arg := range call.Args {
		t, m := a.taintOf(arg)
		argT = append(argT, t)
		argM = append(argM, m)
		allT |= t
		allM |= m
	}

	if fn == nil {
		// Calling a function value: its own taint (e.g. a field holding a
		// wall-clock closure) becomes the result's.
		ft, fm := a.taintOf(call.Fun)
		return ft | allT, fm | allM
	}

	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	key := funcKeyOf(fn)

	// Nondeterminism sources.
	switch path {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return taintTime, 0
		}
	case "math/rand", "math/rand/v2":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil &&
			!strings.HasPrefix(fn.Name(), "New") {
			// Package-level sampling funcs use the shared, unseeded
			// generator. Constructors (New, NewSource, NewPCG, ...) and
			// methods on the seeded *rand.Rand they return stay
			// deterministic — seeded streams are the module's
			// deterministic randomness plane.
			return taintRand, 0
		}
	case "crypto/rand":
		return taintRand | allT, allM
	case "fmt":
		t := allT
		if len(call.Args) > 0 {
			if lit, ok := call.Args[0].(*ast.BasicLit); ok && strings.Contains(lit.Value, "%p") {
				t |= taintPtr
			}
		}
		return t, allM
	case "sort", "slices":
		// Sorting establishes a deterministic order: clear map-order
		// taint from the sorted variable.
		if strings.HasPrefix(fn.Name(), "Sort") || fn.Name() == "Slice" ||
			fn.Name() == "SliceStable" || fn.Name() == "Strings" ||
			fn.Name() == "Ints" || fn.Name() == "Float64s" {
			if len(call.Args) > 0 {
				a.cleanse(call.Args[0], taintMapOrder)
			}
			return 0, 0
		}
	}

	if sum, isModule := a.c.sums[key]; isModule {
		t := sum.ret
		var m uint64
		for i := range argT {
			if sum.retParams&(1<<uint(i)) != 0 {
				t |= argT[i]
				m |= argM[i]
			}
			if sum.sinkParams&(1<<uint(i)) != 0 {
				a.sinkArg(call, argT[i], argM[i], call.Pos(), "argument reaching a determinism sink inside "+fn.Name())
			}
		}
		for fkey, mask := range sum.fieldFlows {
			for i := range argT {
				if mask&(1<<uint(i)) != 0 {
					a.c.bumpFieldAt(fkey, argT[i], call.Pos())
					if argM[i] != 0 && a.sum.fieldFlows[fkey]|argM[i] != a.sum.fieldFlows[fkey] {
						a.sum.fieldFlows[fkey] |= argM[i]
						a.c.changed = true
					}
				}
			}
		}
		// The receiver is the sink object itself (a recorder, an encoder),
		// not data being encoded: only the arguments are checked.
		first := 0
		if hasRecv {
			first = 1
		}
		if desc, isSink := a.c.sinks[key]; isSink {
			a.markSink(call, "sink "+desc+" event")
			for i := first; i < len(argT); i++ {
				st := argT[i] | a.structArgTaint(call, i, fn)
				a.sinkArg(call, st, argM[i], call.Pos(), "sink "+desc)
			}
		}
		if desc, isSink := builtinSinks[key]; isSink {
			a.markSink(call, desc)
			for i := first; i < len(argT); i++ {
				st := argT[i] | a.structArgTaint(call, i, fn)
				a.sinkArg(call, st, argM[i], call.Pos(), desc)
			}
		}
		if sum.callsSink {
			a.markSink(call, "a determinism-sink event (via "+fn.Name()+")")
		}
		return t, m
	}

	// Generic encoder sinks inside the checkpoint/wire/recorder packages.
	if isEncoderFunc(fn) && isSinkPkg(a.pkg) {
		a.markSink(call, "checkpoint/wire encoding")
		first := 0
		if hasRecv {
			first = 1
		}
		for i := first; i < len(argT); i++ {
			st := argT[i] | a.structArgTaint(call, i, fn)
			a.sinkArg(call, st, argM[i], call.Pos(), "checkpoint/wire encoding")
		}
		return 0, 0
	}

	// Unknown (stdlib) call: taint flows through.
	return allT, allM
}

// structArgTaint adds the field-level taint of a struct argument handed
// whole to a sink (bit i of the call's receiver+args list).
func (a *dtFunc) structArgTaint(call *ast.CallExpr, i int, fn *types.Func) taintKind {
	hasRecv := false
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		hasRecv = true
	}
	var e ast.Expr
	if hasRecv {
		if i == 0 {
			return 0
		}
		if i-1 < len(call.Args) {
			e = call.Args[i-1]
		}
	} else if i < len(call.Args) {
		e = call.Args[i]
	}
	if e == nil {
		return 0
	}
	t := a.pkg.Info.TypeOf(e)
	if t == nil {
		return 0
	}
	return a.structTaint(t)
}

// markSink records that the current function performs a sink emission
// (directly or through a callee) and, when the emitting call sits inside a
// range over a map, reports it: each iteration emits one event, so the
// emitted sequence follows map iteration order even when every individual
// value is deterministic — and recorder dumps and encodings are compared
// as ordered byte streams.
func (a *dtFunc) markSink(call *ast.CallExpr, what string) {
	if !a.sum.callsSink {
		a.sum.callsSink = true
		a.c.changed = true
	}
	if a.mapDep > 0 && a.report && !a.c.reported[call.Pos()] {
		a.c.reported[call.Pos()] = true
		a.c.mp.Reportf(call.Pos(),
			"%s emitted inside a range over a map: emission order follows map iteration order; iterate sorted keys instead", what)
	}
}

func (a *dtFunc) sinkArg(call *ast.CallExpr, t taintKind, mask uint64, pos token.Pos, what string) {
	a.sinkFlow(mask)
	if !a.report || t == 0 || a.c.reported[pos] {
		return
	}
	a.c.reported[pos] = true
	a.c.mp.Reportf(pos, "nondeterministic value (%s) flows into %s", t, what)
}

// cleanse clears taint kinds from the variable at the root of e.
func (a *dtFunc) cleanse(e ast.Expr, t taintKind) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.UnaryExpr:
			e = x.X
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	obj := a.pkg.Info.Uses[id]
	if obj == nil {
		return
	}
	a.vars[obj] &^= t
}

// sortedTaintKeys is a debugging helper kept for deterministic dumps.
func sortedTaintKeys(m map[string]taintKind) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
