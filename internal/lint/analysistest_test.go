package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// RunTest runs one analyzer over the testdata tree at dir and checks its
// diagnostics against "// want" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest in miniature.
//
// Each immediate subdirectory of dir is one package, importable by the
// other subdirectories under its bare directory name (so a fixture can
// provide a stand-in "privilege" package). A line expecting diagnostics
// carries a trailing comment of the form
//
//	// want "regexp" "another regexp"
//
// with one quoted regexp per expected diagnostic on that line. The test
// fails on any unmatched expectation and any unexpected diagnostic.
// Match policies are deliberately bypassed: fixtures exercise the check
// itself, not the driver's package selection.
func RunTest(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkgs, err := loadTestdata(dir)
	if err != nil {
		t.Fatalf("loading testdata %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under %s", dir)
	}
	var diags []Diagnostic
	if a.RunModule != nil {
		// Module analyzers see every fixture package at once, exactly as
		// the driver presents the module.
		mp := &ModulePass{Analyzer: a, Fset: pkgs[0].Fset, Pkgs: pkgs}
		if err := a.RunModule(mp); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, dir, err)
		}
		allIg := make(ignores)
		for _, pkg := range pkgs {
			for k, v := range collectIgnores(pkg) {
				allIg[k] = v
			}
			diags = append(diags, directiveDiags(pkg)...)
		}
		for _, d := range mp.diags {
			if !allIg.suppressed(d) {
				diags = append(diags, d)
			}
		}
		checkWants(t, pkgs, diags)
		return
	}
	for _, pkg := range pkgs {
		pass := &Pass{
			Analyzer: a, Fset: pkg.Fset, Files: pkg.Files,
			Pkg: pkg.Types, Info: pkg.Info, ModulePath: pkg.ModulePath,
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
		}
		// Apply directive suppression exactly as the driver does, so
		// fixtures can cover //vislint:ignore and //lint:allow too.
		ig := collectIgnores(pkg)
		diags = append(diags, directiveDiags(pkg)...)
		for _, d := range pass.diags {
			if !ig.suppressed(d) {
				diags = append(diags, d)
			}
		}
	}
	checkWants(t, pkgs, diags)
}

// wantRe matches one quoted or backquoted regexp inside a want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

func checkWants(t *testing.T, pkgs []*Package, diags []Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := c.Text
					i := strings.Index(text, "want ")
					if !strings.HasPrefix(text, "//") || i < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(text[i:], -1) {
						pat := m[1]
						if pat == "" {
							pat = m[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// loadTestdata parses and type-checks every package under dir. Local
// imports resolve to sibling subdirectories by bare name; everything else
// resolves through compiler export data fetched lazily with `go list`.
func loadTestdata(dir string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	type rawPkg struct {
		name    string
		files   []*ast.File
		imports map[string]bool
	}
	var raws []*rawPkg
	local := make(map[string]bool)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		names, err := filepath.Glob(filepath.Join(sub, "*.go"))
		if err != nil || len(names) == 0 {
			continue
		}
		sort.Strings(names)
		rp := &rawPkg{name: e.Name(), imports: make(map[string]bool)}
		for _, name := range names {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			rp.files = append(rp.files, f)
			for _, imp := range f.Imports {
				rp.imports[strings.Trim(imp.Path.Value, `"`)] = true
			}
		}
		raws = append(raws, rp)
		local[e.Name()] = true
	}

	im := &lazyImporter{mem: make(map[string]*types.Package), exports: make(map[string]string)}
	im.base = importer.ForCompiler(fset, "gc", im.lookup)

	var pkgs []*Package
	checked := make(map[string]bool)
	for len(pkgs) < len(raws) {
		progress := false
		for _, rp := range raws {
			if checked[rp.name] {
				continue
			}
			ready := true
			for imp := range rp.imports {
				if local[imp] && !checked[imp] {
					ready = false
				}
			}
			if !ready {
				continue
			}
			info := newInfo()
			conf := types.Config{Importer: im}
			tpkg, err := conf.Check(rp.name, fset, rp.files, info)
			if err != nil {
				return nil, fmt.Errorf("type-checking testdata package %s: %w", rp.name, err)
			}
			im.mem[rp.name] = tpkg
			checked[rp.name] = true
			progress = true
			pkgs = append(pkgs, &Package{Path: rp.name, Fset: fset, Files: rp.files, Types: tpkg, Info: info})
		}
		if !progress {
			return nil, fmt.Errorf("import cycle among testdata packages in %s", dir)
		}
	}
	return pkgs, nil
}

// lazyImporter resolves local testdata packages from memory and standard
// library packages from export data, listing each one on first use.
type lazyImporter struct {
	base    types.Importer
	mem     map[string]*types.Package
	exports map[string]string
}

func (im *lazyImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.mem[path]; ok {
		return p, nil
	}
	return im.base.Import(path)
}

func (im *lazyImporter) lookup(path string) (io.ReadCloser, error) {
	f, ok := im.exports[path]
	if !ok {
		out, err := runGoList(".", []string{"list", "-export", "-json", path})
		if err != nil {
			return nil, err
		}
		var p listPkg
		if err := json.Unmarshal(bytes.TrimSpace(out), &p); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output for %s: %w", path, err)
		}
		if p.Export == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		im.exports[path] = p.Export
		f = p.Export
	}
	return os.Open(f)
}
