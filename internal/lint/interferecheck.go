package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Interferecheck flags direct comparison or switch on privilege.Kind or
// privilege.Privilege values outside the privilege package.
//
// The interference relation (paper §4) is the single arbiter of whether
// two privileges order tasks; read/read and reduce(f)/reduce(f) are its
// only non-interfering pairs. Code that compares Kind values directly
// re-derives fragments of that relation ad hoc, and silently goes stale
// when a new privilege kind (or a refinement like write-discard) is
// added. All interference decisions must go through
// privilege.Interferes, and kind dispatch through the IsRead/IsWrite/
// IsReduce/Mutates/Same accessors, so the relation lives in exactly one
// place.
var Interferecheck = &Analyzer{
	Name: "interferecheck",
	Doc:  "forbid ad-hoc comparison/switch on privilege.Kind and privilege.Privilege outside package privilege",
	Run:  runInterferecheck,
}

// isPrivilegePkgPath reports whether path is the privilege package (or a
// testdata stand-in imported as plain "privilege").
func isPrivilegePkgPath(path string) bool {
	return path == "privilege" || strings.HasSuffix(path, "/privilege")
}

// privilegeTypeName returns "Kind" or "Privilege" when t is one of the
// privilege package's restricted types (possibly via alias).
func privilegeTypeName(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || !isPrivilegePkgPath(obj.Pkg().Path()) {
		return "", false
	}
	switch obj.Name() {
	case "Kind", "Privilege":
		return obj.Name(), true
	}
	return "", false
}

func runInterferecheck(pass *Pass) error {
	if isPrivilegePkgPath(pass.Pkg.Path()) {
		// The relation's own definition is the one legitimate home for
		// raw comparisons.
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				name, ok := privilegeTypeName(pass.Info.TypeOf(n.X))
				if !ok {
					name, ok = privilegeTypeName(pass.Info.TypeOf(n.Y))
				}
				if ok {
					pass.Reportf(n.OpPos,
						"comparison of privilege.%s values outside package privilege; use privilege.Interferes or the IsRead/IsWrite/IsReduce/Mutates/Same accessors", name)
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				if name, ok := privilegeTypeName(pass.Info.TypeOf(n.Tag)); ok {
					pass.Reportf(n.Switch,
						"switch on privilege.%s outside package privilege; dispatch through the privilege accessors so new kinds cannot fall through silently", name)
				}
			}
			return true
		})
	}
	return nil
}
