package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Errchecklite flags expression statements that drop an error returned by
// the module's own API (core.Verify, checkpoint I/O, harness writers, ...)
// or by fmt.Fprint* writing to a fallible writer.
//
// core.Verify's whole purpose is its error; a dropped checkpoint or
// report-writer error turns a failed experiment into a silently truncated
// file. The check is deliberately narrow — it does not chase every
// stdlib error like a full errcheck — so that it stays zero-noise:
//
//   - any call whose result tuple includes an error and whose callee is
//     declared in this module must be consumed;
//   - fmt.Fprint/Fprintf/Fprintln must be consumed unless the writer is
//     os.Stdout, os.Stderr, a *strings.Builder, or a *bytes.Buffer (whose
//     Write cannot fail).
//
// Assigning to blank ("_ = f()") is an explicit, greppable opt-out and is
// not flagged.
var Errchecklite = &Analyzer{
	Name: "errchecklite",
	Doc:  "report dropped error returns from the module's own API and from fmt.Fprint* to fallible writers",
	Run:  runErrchecklite,
}

func runErrchecklite(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkDroppedError(pass, call)
			return true
		})
	}
	return nil
}

func checkDroppedError(pass *Pass, call *ast.CallExpr) {
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	if !resultsIncludeError(sig.Results()) {
		return
	}
	obj := calleeObject(pass, call)
	if obj == nil {
		return
	}
	name := obj.Name()
	switch {
	case isModuleObject(pass, obj):
		pass.Reportf(call.Pos(), "result of %s is dropped: the error return is the call's contract; handle it or assign to _ explicitly", name)
	case isFprint(obj) && writerIsFallible(pass, call):
		pass.Reportf(call.Pos(), "error from fmt.%s to a fallible writer is dropped; a failed write silently truncates output", name)
	}
}

func resultsIncludeError(res *types.Tuple) bool {
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

// calleeObject resolves the function or method object a call invokes, or
// nil for dynamic calls (function values, interface methods on unnamed
// callees).
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fun]; ok {
			return sel.Obj()
		}
		return pass.Info.Uses[fun.Sel] // package-qualified call
	}
	return nil
}

// isModuleObject reports whether obj is declared in the package under
// analysis or elsewhere in the same module.
func isModuleObject(pass *Pass, obj types.Object) bool {
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	if pkg == pass.Pkg {
		return true
	}
	return pass.ModulePath != "" &&
		(pkg.Path() == pass.ModulePath || strings.HasPrefix(pkg.Path(), pass.ModulePath+"/"))
}

func isFprint(obj types.Object) bool {
	if obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return false
	}
	switch obj.Name() {
	case "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// writerIsFallible reports whether the first argument of an fmt.Fprint*
// call can actually fail: os.Stdout/os.Stderr and in-memory builders are
// exempt.
func writerIsFallible(pass *Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	w := ast.Unparen(call.Args[0])
	if sel, ok := w.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pkg, ok := pass.Info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "os" &&
				(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
				return false
			}
		}
	}
	t := pass.Info.TypeOf(w)
	if ptr, ok := t.(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok && named.Obj().Pkg() != nil {
			full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if full == "strings.Builder" || full == "bytes.Buffer" {
				return false
			}
		}
	}
	return true
}
