package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Guardedby enforces "// guarded by <mu>" field annotations: a struct
// field carrying the annotation may only be read or written while the
// named sibling mutex field of the same object is held.
//
// The scheduler and event layers protect shared state with sync.Mutex,
// but Go offers no way to bind a mutex to the fields it protects; an
// access added outside the critical section compiles cleanly and only
// fails as an intermittent race. The checker tracks Lock/RLock/Unlock/
// RUnlock calls flow-sensitively through each function body (branches,
// loops, defers) and reports any annotated-field access at a point where
// the guard is not known to be held.
//
// sync.RWMutex is understood: RLock grants read access only — a read
// under RLock is legal, a write (assignment, compound assignment, ++/--,
// or a store through an index like x.f[k] = v) under only RLock is its
// own finding. Lock grants both.
//
// Conventions understood:
//   - "defer x.mu.Unlock()" / "defer x.mu.RUnlock()" keep the guard held
//     (in its acquired mode) to the end of the function;
//   - a function whose name ends in "Locked" is assumed to be called
//     with every guard of its receiver already write-held;
//   - function literals are analyzed with no guards held (they may run
//     on another goroutine);
//   - composite literals do not count as field accesses, so constructors
//     that build the whole value at once need no annotations.
//
// The analysis is intraprocedural and per-package: annotate fields in the
// package that owns the mutex, and export locked accessors rather than
// guarded fields.
var Guardedby = &Analyzer{
	Name: "guardedby",
	Doc:  "report accesses to '// guarded by <mu>' fields without the guard held (writes require the write lock)",
	Match: func(path string) bool {
		switch pkgTail(path) {
		case "sched", "event", "cluster", "harness", "obs", "server", "fault":
			return true
		}
		return false
	},
	Run: runGuardedby,
}

// pkgTail returns the last element of an import path.
func pkgTail(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardInfo describes one annotated field.
type guardInfo struct {
	structName string
	fieldName  string
	guard      string // sibling field holding the mutex
}

// lockMode is what an acquired guard permits.
type lockMode uint8

const (
	modeRead  lockMode = 1 << iota // RLock
	modeWrite                      // Lock (implies read)
)

func runGuardedby(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	w := &lockWalker{pass: pass, guards: guards}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := make(map[string]lockMode)
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				// Callee contract: every guard of the receiver is held.
				if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
					recv := fd.Recv.List[0].Names[0].Name
					for _, gi := range guards {
						held[recv+"."+gi.guard] = modeRead | modeWrite
					}
				}
			}
			w.stmts(fd.Body.List, held)
		}
	}
	return nil
}

// collectGuards finds annotated fields and validates that each names a
// sibling field.
func collectGuards(pass *Pass) map[*types.Var]guardInfo {
	guards := make(map[*types.Var]guardInfo)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, fl := range st.Fields.List {
				for _, name := range fl.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, fl := range st.Fields.List {
				guard := ""
				for _, cg := range []*ast.CommentGroup{fl.Doc, fl.Comment} {
					if cg == nil {
						continue
					}
					if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
						guard = m[1]
					}
				}
				if guard == "" {
					continue
				}
				if !fieldNames[guard] {
					pass.Reportf(fl.Pos(), "field %s of %s is annotated 'guarded by %s' but %s has no field %s",
						fieldList(fl), ts.Name.Name, guard, ts.Name.Name, guard)
					continue
				}
				for _, name := range fl.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						guards[v] = guardInfo{structName: ts.Name.Name, fieldName: name.Name, guard: guard}
					}
				}
			}
			return true
		})
	}
	return guards
}

func fieldList(fl *ast.Field) string {
	var names []string
	for _, n := range fl.Names {
		names = append(names, n.Name)
	}
	return strings.Join(names, ", ")
}

// lockWalker is a conservative flow-sensitive lock tracker. held maps a
// rendered guard path ("x.mu") to the mode that mutex is known held in.
type lockWalker struct {
	pass   *Pass
	guards map[*types.Var]guardInfo
}

func clone(m map[string]lockMode) map[string]lockMode {
	out := make(map[string]lockMode, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func intersect(a, b map[string]lockMode) map[string]lockMode {
	out := make(map[string]lockMode)
	for k := range a {
		if m := a[k] & b[k]; m != 0 {
			out[k] = m
		}
	}
	return out
}

// pathOf renders an ident/selector chain ("x", "x.inner"); "" when the
// expression is not a simple chain.
func pathOf(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.ParenExpr:
		return pathOf(e.X)
	case *ast.StarExpr:
		return pathOf(e.X)
	case *ast.SelectorExpr:
		base := pathOf(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// lockOp classifies a call as a guard acquisition/release; mode is the
// access the acquisition grants (0 for releases).
func lockOp(call *ast.CallExpr) (path string, mode lockMode, release bool, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", 0, false, false
	}
	switch sel.Sel.Name {
	case "Lock":
		mode = modeRead | modeWrite
	case "RLock":
		mode = modeRead
	case "Unlock", "RUnlock":
		release = true
	default:
		return "", 0, false, false
	}
	p := pathOf(sel.X)
	if p == "" {
		return "", 0, false, false
	}
	return p, mode, release, true
}

// exprs checks every guarded-field access inside e (which must not itself
// be a statement) under the current held set, as reads. Function literals
// are walked with an empty held set.
func (w *lockWalker) exprs(e ast.Node, held map[string]lockMode) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmts(n.Body.List, make(map[string]lockMode))
			return false
		case *ast.SelectorExpr:
			w.checkAccess(n, held, false)
		}
		return true
	})
}

// lvalue checks an assignment target: the outermost selected field is a
// write (also through an index or pointer dereference); everything below
// it is read.
func (w *lockWalker) lvalue(e ast.Expr, held map[string]lockMode) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		w.lvalue(e.X, held)
	case *ast.StarExpr:
		w.lvalue(e.X, held)
	case *ast.IndexExpr:
		w.lvalue(e.X, held)
		w.exprs(e.Index, held)
	case *ast.SelectorExpr:
		w.checkAccess(e, held, true)
		w.exprs(e.X, held)
	default:
		w.exprs(e, held)
	}
}

func (w *lockWalker) checkAccess(sel *ast.SelectorExpr, held map[string]lockMode, write bool) {
	s, ok := w.pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	gi, ok := w.guards[v]
	if !ok {
		return
	}
	base := pathOf(sel.X)
	if base == "" {
		// Not a simple chain (e.g. f().field): cannot relate the access
		// to a tracked guard; stay silent rather than guess.
		return
	}
	mode := held[base+"."+gi.guard]
	switch {
	case mode == 0:
		w.pass.Reportf(sel.Sel.Pos(), "access to %s.%s (guarded by %s) without holding %s.%s",
			gi.structName, gi.fieldName, gi.guard, base, gi.guard)
	case write && mode&modeWrite == 0:
		w.pass.Reportf(sel.Sel.Pos(), "write to %s.%s (guarded by %s) while holding only a read lock on %s.%s; use Lock, not RLock",
			gi.structName, gi.fieldName, gi.guard, base, gi.guard)
	}
}

// stmts walks a statement list, returning the held set after the list and
// whether control definitely leaves it (return/branch/goto).
func (w *lockWalker) stmts(list []ast.Stmt, held map[string]lockMode) (map[string]lockMode, bool) {
	for _, s := range list {
		var term bool
		held, term = w.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]lockMode) (map[string]lockMode, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if path, mode, release, ok := lockOp(call); ok {
				held = clone(held)
				if release {
					delete(held, path)
				} else {
					held[path] = mode
				}
				return held, false
			}
		}
		w.exprs(s.X, held)
		return held, false

	case *ast.DeferStmt:
		if _, _, release, ok := lockOp(s.Call); ok && release {
			// Deferred release: the guard stays held, in whatever mode it
			// was acquired, to function end.
			return held, false
		}
		w.exprs(s.Call, held)
		return held, false

	case *ast.GoStmt:
		w.exprs(s.Call, held)
		return held, false

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.exprs(e, held)
		}
		for _, e := range s.Lhs {
			w.lvalue(e, held)
		}
		return held, false

	case *ast.IncDecStmt:
		w.lvalue(s.X, held)
		return held, false

	case *ast.SendStmt:
		w.exprs(s.Chan, held)
		w.exprs(s.Value, held)
		return held, false

	case *ast.DeclStmt:
		w.exprs(s.Decl, held)
		return held, false

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.exprs(e, held)
		}
		return held, true

	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; the enclosing
		// construct merges conservatively.
		return held, s.Tok != token.FALLTHROUGH

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)

	case *ast.BlockStmt:
		return w.stmts(s.List, clone(held))

	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.exprs(s.Cond, held)
		thenHeld, thenTerm := w.stmts(s.Body.List, clone(held))
		elseHeld, elseTerm := held, false
		if s.Else != nil {
			elseHeld, elseTerm = w.stmt(s.Else, clone(held))
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return intersect(thenHeld, elseHeld), false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.exprs(s.Cond, held)
		bodyHeld, _ := w.stmts(s.Body.List, clone(held))
		if s.Post != nil {
			w.stmt(s.Post, bodyHeld)
		}
		// The body may run zero times; only guards held both before and
		// after an iteration survive the loop.
		return intersect(held, bodyHeld), false

	case *ast.RangeStmt:
		w.exprs(s.X, held)
		bodyHeld, _ := w.stmts(s.Body.List, clone(held))
		return intersect(held, bodyHeld), false

	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.exprs(s.Tag, held)
		return w.clauses(s.Body.List, held)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		return w.clauses(s.Body.List, held)

	case *ast.SelectStmt:
		return w.clauses(s.Body.List, held)

	default:
		// Conservative fallback: check accesses, assume no lock effects.
		w.exprs(s, held)
		return held, false
	}
}

// clauses merges case/comm clause bodies: a guard survives only if held
// on every non-terminating path, including the no-case-taken path.
func (w *lockWalker) clauses(list []ast.Stmt, held map[string]lockMode) (map[string]lockMode, bool) {
	after := held
	for _, c := range list {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.exprs(e, held)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.stmt(c.Comm, clone(held))
			}
			body = c.Body
		default:
			continue
		}
		cHeld, cTerm := w.stmts(body, clone(held))
		if !cTerm {
			after = intersect(after, cHeld)
		}
	}
	return after, false
}
