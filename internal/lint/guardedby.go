package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Guardedby enforces "// guarded by <mu>" field annotations: a struct
// field carrying the annotation may only be read or written while the
// named sibling mutex field of the same object is held.
//
// The scheduler and event layers protect shared state with sync.Mutex,
// but Go offers no way to bind a mutex to the fields it protects; an
// access added outside the critical section compiles cleanly and only
// fails as an intermittent race. The checker tracks Lock/RLock/Unlock/
// RUnlock calls flow-sensitively through each function body (branches,
// loops, defers) and reports any annotated-field access at a point where
// the guard is not known to be held.
//
// Conventions understood:
//   - "defer x.mu.Unlock()" keeps the guard held to the end of the
//     function;
//   - a function whose name ends in "Locked" is assumed to be called
//     with every guard of its receiver already held;
//   - function literals are analyzed with no guards held (they may run
//     on another goroutine);
//   - composite literals do not count as field accesses, so constructors
//     that build the whole value at once need no annotations.
//
// The analysis is intraprocedural and per-package: annotate fields in the
// package that owns the mutex, and export locked accessors rather than
// guarded fields.
var Guardedby = &Analyzer{
	Name: "guardedby",
	Doc:  "report accesses to '// guarded by <mu>' fields without the guard held",
	Match: func(path string) bool {
		switch pkgTail(path) {
		case "sched", "event", "cluster", "harness", "obs", "server", "fault":
			return true
		}
		return false
	},
	Run: runGuardedby,
}

// pkgTail returns the last element of an import path.
func pkgTail(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardInfo describes one annotated field.
type guardInfo struct {
	structName string
	fieldName  string
	guard      string // sibling field holding the mutex
}

func runGuardedby(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	w := &lockWalker{pass: pass, guards: guards}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := make(map[string]bool)
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				// Callee contract: every guard of the receiver is held.
				if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
					recv := fd.Recv.List[0].Names[0].Name
					for _, gi := range guards {
						held[recv+"."+gi.guard] = true
					}
				}
			}
			w.stmts(fd.Body.List, held)
		}
	}
	return nil
}

// collectGuards finds annotated fields and validates that each names a
// sibling field.
func collectGuards(pass *Pass) map[*types.Var]guardInfo {
	guards := make(map[*types.Var]guardInfo)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, fl := range st.Fields.List {
				for _, name := range fl.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, fl := range st.Fields.List {
				guard := ""
				for _, cg := range []*ast.CommentGroup{fl.Doc, fl.Comment} {
					if cg == nil {
						continue
					}
					if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
						guard = m[1]
					}
				}
				if guard == "" {
					continue
				}
				if !fieldNames[guard] {
					pass.Reportf(fl.Pos(), "field %s of %s is annotated 'guarded by %s' but %s has no field %s",
						fieldList(fl), ts.Name.Name, guard, ts.Name.Name, guard)
					continue
				}
				for _, name := range fl.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						guards[v] = guardInfo{structName: ts.Name.Name, fieldName: name.Name, guard: guard}
					}
				}
			}
			return true
		})
	}
	return guards
}

func fieldList(fl *ast.Field) string {
	var names []string
	for _, n := range fl.Names {
		names = append(names, n.Name)
	}
	return strings.Join(names, ", ")
}

// lockWalker is a conservative flow-sensitive lock tracker. held maps a
// rendered guard path ("x.mu") to whether that mutex is known held.
type lockWalker struct {
	pass   *Pass
	guards map[*types.Var]guardInfo
}

func clone(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func intersect(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool)
	for k := range a {
		if a[k] && b[k] {
			out[k] = true
		}
	}
	return out
}

// pathOf renders an ident/selector chain ("x", "x.inner"); "" when the
// expression is not a simple chain.
func pathOf(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.ParenExpr:
		return pathOf(e.X)
	case *ast.StarExpr:
		return pathOf(e.X)
	case *ast.SelectorExpr:
		base := pathOf(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// lockOp classifies a call as a guard acquisition/release; returns the
// guard path and +1 (acquire) / -1 (release), or ok=false.
func lockOp(call *ast.CallExpr) (path string, acquire bool, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false, false
	}
	p := pathOf(sel.X)
	if p == "" {
		return "", false, false
	}
	return p, acquire, true
}

// exprs checks every guarded-field access inside e (which must not itself
// be a statement) under the current held set. Function literals are
// walked with an empty held set.
func (w *lockWalker) exprs(e ast.Node, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmts(n.Body.List, make(map[string]bool))
			return false
		case *ast.SelectorExpr:
			w.checkAccess(n, held)
		}
		return true
	})
}

func (w *lockWalker) checkAccess(sel *ast.SelectorExpr, held map[string]bool) {
	s, ok := w.pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	gi, ok := w.guards[v]
	if !ok {
		return
	}
	base := pathOf(sel.X)
	if base == "" {
		// Not a simple chain (e.g. f().field): cannot relate the access
		// to a tracked guard; stay silent rather than guess.
		return
	}
	if !held[base+"."+gi.guard] {
		w.pass.Reportf(sel.Sel.Pos(), "access to %s.%s (guarded by %s) without holding %s.%s",
			gi.structName, gi.fieldName, gi.guard, base, gi.guard)
	}
}

// stmts walks a statement list, returning the held set after the list and
// whether control definitely leaves it (return/branch/goto).
func (w *lockWalker) stmts(list []ast.Stmt, held map[string]bool) (map[string]bool, bool) {
	for _, s := range list {
		var term bool
		held, term = w.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) (map[string]bool, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if path, acquire, ok := lockOp(call); ok {
				held = clone(held)
				held[path] = acquire
				return held, false
			}
		}
		w.exprs(s.X, held)
		return held, false

	case *ast.DeferStmt:
		if _, acquire, ok := lockOp(s.Call); ok && !acquire {
			// Deferred release: the guard stays held to function end.
			return held, false
		}
		w.exprs(s.Call, held)
		return held, false

	case *ast.GoStmt:
		w.exprs(s.Call, held)
		return held, false

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.exprs(e, held)
		}
		for _, e := range s.Lhs {
			w.exprs(e, held)
		}
		return held, false

	case *ast.IncDecStmt:
		w.exprs(s.X, held)
		return held, false

	case *ast.SendStmt:
		w.exprs(s.Chan, held)
		w.exprs(s.Value, held)
		return held, false

	case *ast.DeclStmt:
		w.exprs(s.Decl, held)
		return held, false

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.exprs(e, held)
		}
		return held, true

	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; the enclosing
		// construct merges conservatively.
		return held, s.Tok.String() != "fallthrough"

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)

	case *ast.BlockStmt:
		return w.stmts(s.List, clone(held))

	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.exprs(s.Cond, held)
		thenHeld, thenTerm := w.stmts(s.Body.List, clone(held))
		elseHeld, elseTerm := held, false
		if s.Else != nil {
			elseHeld, elseTerm = w.stmt(s.Else, clone(held))
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return intersect(thenHeld, elseHeld), false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.exprs(s.Cond, held)
		bodyHeld, _ := w.stmts(s.Body.List, clone(held))
		if s.Post != nil {
			w.stmt(s.Post, bodyHeld)
		}
		// The body may run zero times; only guards held both before and
		// after an iteration survive the loop.
		return intersect(held, bodyHeld), false

	case *ast.RangeStmt:
		w.exprs(s.X, held)
		bodyHeld, _ := w.stmts(s.Body.List, clone(held))
		return intersect(held, bodyHeld), false

	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.exprs(s.Tag, held)
		return w.clauses(s.Body.List, held)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		return w.clauses(s.Body.List, held)

	case *ast.SelectStmt:
		return w.clauses(s.Body.List, held)

	default:
		// Conservative fallback: check accesses, assume no lock effects.
		w.exprs(s, held)
		return held, false
	}
}

// clauses merges case/comm clause bodies: a guard survives only if held
// on every non-terminating path, including the no-case-taken path.
func (w *lockWalker) clauses(list []ast.Stmt, held map[string]bool) (map[string]bool, bool) {
	after := held
	for _, c := range list {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.exprs(e, held)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.stmt(c.Comm, clone(held))
			}
			body = c.Body
		default:
			continue
		}
		cHeld, cTerm := w.stmts(body, clone(held))
		if !cTerm {
			after = intersect(after, cHeld)
		}
	}
	return after, false
}
