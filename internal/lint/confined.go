package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Confined is the goroutine-confinement pass. Struct fields and types
// annotated "// confined to <domain>" may only be reached from code whose
// execution domain is provably that domain. The pass builds a module-wide
// call graph seeded at every entry point — main, init, test functions, and
// every `go` statement — and propagates execution domains along call and
// function-value edges to a fixpoint.
//
// Domains start at roots: a function whose doc comment carries
// "// confined to <domain>" executes in exactly that domain, no matter who
// calls it (this models per-instance ownership: any goroutine may own an
// instance, but a single one at a time drives its API). Two built-in
// domains exist: #outside (main, init, and goroutines spawned without a
// domain root) and #test (Test/Benchmark/Fuzz/Example functions), and
// #test is allowed to touch everything — tests drive single-goroutine
// instances directly.
//
// Three annotation forms:
//
//	// confined to <domain>     on a struct field: the field may only be
//	                            accessed from code in <domain>; if the
//	                            field has func type, function literals
//	                            stored into it become <domain> roots.
//	// confined to <domain>     on a function: a domain root (see above).
//	// confined to <domain>     on a struct type: escape rules only — a
//	                            value of the type must not be sent over a
//	                            channel, stored in a package-level
//	                            variable, or captured by a spawned
//	                            goroutine's closure.
//	//confined:callbacks <domain>  on a function: function literals passed
//	                            directly as arguments to it become
//	                            <domain> roots (for executor APIs that
//	                            run their callbacks on a domain's
//	                            goroutine, e.g. Processor.Spawn).
//
// Known, deliberate imprecision: a function literal not bound by any rule
// above inherits its enclosing function's domains (the synchronous-
// callback assumption), functions reached only through interface dispatch
// have no domains and go unchecked (annotate the implementing method as a
// root instead), and passing a function value around merges the referrer's
// domains into the referee rather than tracking where it is eventually
// invoked.
var Confined = &Analyzer{
	Name: "confined",
	Doc: "checks that state annotated 'confined to <domain>' is only reached " +
		"from code executing in that goroutine domain",
	RunModule: runConfined,
}

const (
	domainOutside = "#outside"
	domainTest    = "#test"
)

// confinedAnnRe matches a "confined to <domain>" annotation occupying a
// whole line of a comment group (so prose mentioning confinement does not
// trigger it).
var confinedAnnRe = regexp.MustCompile(`(?m)^\s*confined to ([a-z][a-z0-9_-]*)\s*$`)

// callbacksAnnRe matches the raw "//confined:callbacks <domain>" directive.
var callbacksAnnRe = regexp.MustCompile(`^//confined:callbacks\s+([a-z][a-z0-9_-]*)`)

// cnode is one function (declaration or literal) in the domain graph.
type cnode struct {
	key     string // "pkg.Recv.Name" for decls, "" for literals
	pkg     *Package
	fn      ast.Node // *ast.FuncDecl or *ast.FuncLit
	body    *ast.BlockStmt
	root    string // fixed domain; "" means propagated
	spawned bool   // literal launched by a go statement
	domains map[string]bool
	succs   map[*cnode]bool // domain flow: this → succ
}

type confCtx struct {
	mp      *ModulePass
	fields  map[string]string // "pkg.Struct.Field" → domain
	funcFld map[string]bool   // annotated fields with func type
	ctypes  map[string]string // "pkg.Type" → domain
	cbacks  map[string]string // func key → callback-root domain
	decls   map[string]*cnode // func key → node
	nodes   []*cnode          // all nodes in deterministic order
	parents map[ast.Node]ast.Node
}

func runConfined(mp *ModulePass) error {
	c := &confCtx{
		mp:      mp,
		fields:  make(map[string]string),
		funcFld: make(map[string]bool),
		ctypes:  make(map[string]string),
		cbacks:  make(map[string]string),
		decls:   make(map[string]*cnode),
		parents: make(map[ast.Node]ast.Node),
	}
	c.buildParents()
	c.collectAnnotations()
	c.buildDecls()
	for _, n := range c.declsInOrder() {
		c.walkNode(n)
	}
	c.packageLevelLits()
	c.propagate()
	c.check()
	return nil
}

func (c *confCtx) buildParents() {
	for _, pkg := range c.mp.Pkgs {
		for _, f := range pkg.Files {
			var stack []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				if len(stack) > 0 {
					c.parents[n] = stack[len(stack)-1]
				}
				stack = append(stack, n)
				return true
			})
		}
	}
}

// annDomain extracts a confinement domain from any of the comment groups.
func annDomain(groups ...*ast.CommentGroup) string {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		if m := confinedAnnRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func (c *confCtx) collectAnnotations() {
	for _, pkg := range c.mp.Pkgs {
		path := pkg.Types.Path()
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					typeDoc := ts.Doc
					if typeDoc == nil && len(gd.Specs) == 1 {
						typeDoc = gd.Doc
					}
					if d := annDomain(typeDoc, ts.Comment); d != "" {
						c.ctypes[path+"."+ts.Name.Name] = d
					}
					for _, fld := range st.Fields.List {
						d := annDomain(fld.Doc, fld.Comment)
						if d == "" {
							continue
						}
						_, isFunc := fld.Type.(*ast.FuncType)
						for _, name := range fld.Names {
							key := path + "." + ts.Name.Name + "." + name.Name
							c.fields[key] = d
							if isFunc {
								c.funcFld[key] = true
							}
						}
					}
				}
			}
		}
	}
}

// declKey builds the string identity of a declared function: package path,
// receiver type name (or empty), and name. String identity is what unifies
// a package with its test variant.
func declKey(path string, fd *ast.FuncDecl) string {
	recv := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		for {
			switch x := t.(type) {
			case *ast.StarExpr:
				t = x.X
				continue
			case *ast.IndexExpr:
				t = x.X
				continue
			case *ast.IndexListExpr:
				t = x.X
				continue
			}
			break
		}
		if id, ok := t.(*ast.Ident); ok {
			recv = id.Name
		}
	}
	return path + "." + recv + "." + fd.Name.Name
}

// funcKeyOf is declKey for a resolved types.Func.
func funcKeyOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			recv = n.Obj().Name()
		}
	}
	return fn.Pkg().Path() + "." + recv + "." + fn.Name()
}

var testFuncRe = regexp.MustCompile(`^(Test|Benchmark|Fuzz|Example)`)

func (c *confCtx) buildDecls() {
	for _, pkg := range c.mp.Pkgs {
		path := pkg.Types.Path()
		for _, f := range pkg.Files {
			inTestFile := strings.HasSuffix(c.mp.Fset.Position(f.Pos()).Filename, "_test.go")
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				n := &cnode{
					key:     declKey(path, fd),
					pkg:     pkg,
					fn:      fd,
					body:    fd.Body,
					domains: make(map[string]bool),
					succs:   make(map[*cnode]bool),
				}
				if d := annDomain(fd.Doc); d != "" {
					n.root = d
				}
				if fd.Doc != nil {
					for _, cm := range fd.Doc.List {
						if m := callbacksAnnRe.FindStringSubmatch(cm.Text); m != nil {
							c.cbacks[n.key] = m[1]
						}
					}
				}
				if n.root == "" {
					switch {
					case fd.Recv == nil && fd.Name.Name == "main" && f.Name.Name == "main":
						n.root = domainOutside
					case fd.Recv == nil && fd.Name.Name == "init":
						n.root = domainOutside
					case inTestFile && fd.Recv == nil && testFuncRe.MatchString(fd.Name.Name):
						n.root = domainTest
					}
				}
				if n.root != "" {
					n.domains[n.root] = true
				}
				c.decls[n.key] = n
				c.nodes = append(c.nodes, n)
			}
		}
	}
}

func (c *confCtx) declsInOrder() []*cnode {
	out := make([]*cnode, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// funcTarget resolves an expression to a module function's node, if any.
func (c *confCtx) funcTarget(pkg *Package, e ast.Expr) *cnode {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.IndexListExpr:
			e = x.X
			continue
		}
		break
	}
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	return c.decls[funcKeyOf(fn)]
}

// inCallPosition reports whether e (an ident or selector referencing a
// function) is the callee of a call expression, climbing through parens,
// selector heads, and generic instantiations.
func (c *confCtx) inCallPosition(e ast.Expr) bool {
	cur := ast.Node(e)
	for {
		p := c.parents[cur]
		switch x := p.(type) {
		case *ast.ParenExpr:
			cur = x
			continue
		case *ast.SelectorExpr:
			if x.Sel == cur {
				cur = x
				continue
			}
			return false
		case *ast.IndexExpr:
			if x.X == cur {
				cur = x
				continue
			}
			return false
		case *ast.IndexListExpr:
			if x.X == cur {
				cur = x
				continue
			}
			return false
		case *ast.CallExpr:
			return x.Fun == cur
		default:
			return false
		}
	}
}

func (c *confCtx) edge(from, to *cnode) {
	if to.root != "" {
		return // roots fix their own domain
	}
	from.succs[to] = true
}

// classifyLit decides the binding of a function literal: spawned by go,
// stored into an annotated func field, passed to a callbacks-annotated
// function, or plain (inherits the enclosing node's domains).
func (c *confCtx) classifyLit(encl *cnode, lit *ast.FuncLit) *cnode {
	n := &cnode{
		pkg:     encl.pkg,
		fn:      lit,
		body:    lit.Body,
		domains: make(map[string]bool),
		succs:   make(map[*cnode]bool),
	}
	pkg := encl.pkg
	switch p := c.parents[lit].(type) {
	case *ast.CallExpr:
		if p.Fun == lit {
			if g, ok := c.parents[p].(*ast.GoStmt); ok && g.Call == p {
				n.root = domainOutside
				n.spawned = true
			}
			break // immediately-invoked literal: inherits
		}
		// Literal passed as an argument.
		if callee := c.funcTarget(pkg, p.Fun); callee != nil {
			if d, ok := c.cbacks[callee.key]; ok {
				n.root = d
			}
		}
	case *ast.KeyValueExpr:
		if p.Value != lit {
			break
		}
		cl, ok := c.parents[p].(*ast.CompositeLit)
		if !ok {
			break
		}
		keyID, ok := p.Key.(*ast.Ident)
		if !ok {
			break
		}
		if k := namedKeyOf(pkg.Info.TypeOf(cl)); k != "" {
			fkey := k + "." + keyID.Name
			if c.funcFld[fkey] {
				n.root = c.fields[fkey]
			}
		}
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if rhs != ast.Expr(lit) || i >= len(p.Lhs) {
				continue
			}
			sel, ok := p.Lhs[i].(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if fkey, ok := c.fieldKeyOf(pkg, sel); ok && c.funcFld[fkey] {
				n.root = c.fields[fkey]
			}
		}
	}
	if n.root != "" {
		n.domains[n.root] = true
	} else {
		c.edge(encl, n)
	}
	c.nodes = append(c.nodes, n)
	return n
}

// walkNode traverses the region of n's body belonging to n itself —
// nested function literals become their own nodes and are walked
// recursively — and records domain-flow edges.
func (c *confCtx) walkNode(n *cnode) {
	pkg := n.pkg
	ast.Inspect(n.body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			lit := c.classifyLit(n, x)
			c.walkNode(lit)
			return false
		case *ast.CallExpr:
			callee := c.funcTarget(pkg, x.Fun)
			if callee == nil {
				return true
			}
			if g, ok := c.parents[x].(*ast.GoStmt); ok && g.Call == x {
				// go f(): spawn. An unannotated target may now run
				// outside every domain; an annotated root is how a
				// domain legitimately starts its goroutine.
				if callee.root == "" {
					callee.domains[domainOutside] = true
				}
				return true
			}
			c.edge(n, callee)
		case *ast.Ident:
			if sel, ok := c.parents[x].(*ast.SelectorExpr); ok && sel.Sel == x {
				return true // handled at the selector
			}
			if _, ok := pkg.Info.Uses[x].(*types.Func); !ok {
				return true
			}
			if c.inCallPosition(x) {
				return true
			}
			if t := c.funcTarget(pkg, x); t != nil {
				c.edge(n, t)
			}
		case *ast.SelectorExpr:
			if _, ok := pkg.Info.Uses[x.Sel].(*types.Func); !ok {
				return true
			}
			if c.inCallPosition(x) {
				return true
			}
			if t := c.funcTarget(pkg, x); t != nil {
				c.edge(n, t)
			}
		}
		return true
	})
}

// packageLevelLits gives function literals bound at package level their
// own (domainless) nodes so their bodies still get escape checks.
func (c *confCtx) packageLevelLits() {
	for _, pkg := range c.mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						lit, ok := v.(*ast.FuncLit)
						if !ok {
							continue
						}
						n := &cnode{
							pkg: pkg, fn: lit, body: lit.Body,
							domains: make(map[string]bool),
							succs:   make(map[*cnode]bool),
						}
						c.nodes = append(c.nodes, n)
						c.walkNode(n)
					}
				}
			}
		}
	}
}

func (c *confCtx) propagate() {
	for changed := true; changed; {
		changed = false
		for _, n := range c.nodes {
			for succ := range n.succs {
				for d := range n.domains {
					if !succ.domains[d] {
						succ.domains[d] = true
						changed = true
					}
				}
			}
		}
	}
}

// fieldKeyOf resolves a selector to a "pkg.Struct.Field" key when the
// selection is a struct field access.
func (c *confCtx) fieldKeyOf(pkg *Package, sel *ast.SelectorExpr) (string, bool) {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	k := namedKeyOf(s.Recv())
	if k == "" {
		return "", false
	}
	return k + "." + sel.Sel.Name, true
}

// namedKeyOf renders a (possibly pointer-to) named type as "pkg.Name".
func namedKeyOf(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// domainsOK reports whether code running in domains S may touch state
// confined to d: every domain must be d itself or #test.
func domainsOK(S map[string]bool, d string) bool {
	for s := range S {
		if s != d && s != domainTest {
			return false
		}
	}
	return true
}

func domainList(S map[string]bool) string {
	out := make([]string, 0, len(S))
	for d := range S {
		out = append(out, d)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}

func (c *confCtx) describe(n *cnode) string {
	if fd, ok := n.fn.(*ast.FuncDecl); ok {
		return fmt.Sprintf("function %s", fd.Name.Name)
	}
	pos := c.mp.Fset.Position(n.fn.Pos())
	return fmt.Sprintf("function literal at line %d", pos.Line)
}

func (c *confCtx) check() {
	for _, n := range c.nodes {
		c.checkNode(n)
	}
}

func (c *confCtx) checkNode(n *cnode) {
	pkg := n.pkg
	ast.Inspect(n.body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if x != n.fn {
				return false // its own node walks it
			}
		case *ast.SelectorExpr:
			key, ok := c.fieldKeyOf(pkg, x)
			if !ok {
				return true
			}
			d, ok := c.fields[key]
			if !ok {
				return true
			}
			if len(n.domains) == 0 || domainsOK(n.domains, d) {
				return true
			}
			c.mp.Reportf(x.Sel.Pos(),
				"%s-confined field %s accessed from %s, which runs in [%s]",
				d, key, c.describe(n), domainList(n.domains))
		case *ast.SendStmt:
			if k := namedKeyOf(pkg.Info.TypeOf(x.Value)); k != "" {
				if d, ok := c.ctypes[k]; ok {
					c.mp.Reportf(x.Arrow,
						"value of %s-confined type %s sent over a channel, leaving its domain",
						d, k)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				base := lhs
				for {
					switch b := base.(type) {
					case *ast.SelectorExpr:
						base = b.X
						continue
					case *ast.IndexExpr:
						base = b.X
						continue
					case *ast.StarExpr:
						base = b.X
						continue
					case *ast.ParenExpr:
						base = b.X
						continue
					}
					break
				}
				id, ok := base.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pkg.Info.Uses[id]
				if obj == nil {
					obj = pkg.Info.Defs[id]
				}
				v, ok := obj.(*types.Var)
				if !ok || v.Parent() != pkg.Types.Scope() {
					continue
				}
				if i >= len(x.Rhs) {
					continue
				}
				if k := namedKeyOf(pkg.Info.TypeOf(x.Rhs[i])); k != "" {
					if d, ok := c.ctypes[k]; ok {
						c.mp.Reportf(lhs.Pos(),
							"value of %s-confined type %s stored in package-level variable %s",
							d, k, id.Name)
					}
				}
			}
		case *ast.Ident:
			if !n.spawned {
				return true
			}
			lit := n.fn.(*ast.FuncLit)
			v, ok := pkg.Info.Uses[x].(*types.Var)
			if !ok || v.IsField() {
				return true
			}
			if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
				return true // declared inside the goroutine
			}
			if k := namedKeyOf(v.Type()); k != "" {
				if d, ok := c.ctypes[k]; ok {
					c.mp.Reportf(x.Pos(),
						"goroutine closure captures %s, a value of %s-confined type %s",
						x.Name, d, k)
				}
			}
		}
		return true
	})
}
