package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check, mirroring golang.org/x/tools/go/analysis
// in miniature.
type Analyzer struct {
	Name string
	Doc  string
	// Match restricts which packages the driver runs this analyzer on
	// (nil means every package). It receives the import path with any
	// "_test" suffix stripped, so an analyzer scoped to a package also
	// covers its external tests.
	Match func(pkgPath string) bool
	Run   func(*Pass) error
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	ModulePath string

	diags []Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Interferecheck, Guardedby, Detrange, Errchecklite}
}

// Run applies every matching analyzer to every package, filters
// directive-suppressed findings, and returns the remainder sorted by
// position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		ig := collectIgnores(pkg)
		matchPath := strings.TrimSuffix(pkg.Path, "_test")
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(matchPath) {
				continue
			}
			pass := &Pass{
				Analyzer: a, Fset: pkg.Fset, Files: pkg.Files,
				Pkg: pkg.Types, Info: pkg.Info, ModulePath: pkg.ModulePath,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !ig.suppressed(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// ignoreDirective matches "//vislint:ignore name[,name...] [reason]".
var ignoreDirective = regexp.MustCompile(`^//vislint:ignore\s+([\w,]+)`)

// ignores maps file:line to the analyzer names suppressed there.
type ignores map[string]map[string]bool

// collectIgnores scans a package's comments for vislint:ignore directives.
// A directive suppresses matching diagnostics on its own line and on the
// following line (so it can sit above a statement or trail it).
func collectIgnores(pkg *Package) ignores {
	ig := make(ignores)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreDirective.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						key := fmt.Sprintf("%s:%d", pos.Filename, line)
						if ig[key] == nil {
							ig[key] = make(map[string]bool)
						}
						ig[key][name] = true
					}
				}
			}
		}
	}
	return ig
}

func (ig ignores) suppressed(d Diagnostic) bool {
	key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
	return ig[key][d.Analyzer] || ig[key]["all"]
}
