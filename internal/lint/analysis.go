package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check, mirroring golang.org/x/tools/go/analysis
// in miniature. Exactly one of Run and RunModule is set: Run analyzers see
// one package at a time, RunModule analyzers (confined, dettaint) see the
// whole module at once, because their properties — goroutine confinement,
// taint from source to sink — cross package boundaries.
type Analyzer struct {
	Name string
	Doc  string
	// Match restricts which packages the driver runs this analyzer on
	// (nil means every package). It receives the import path with any
	// "_test" suffix stripped, so an analyzer scoped to a package also
	// covers its external tests. Ignored for RunModule analyzers.
	Match     func(pkgPath string) bool
	Run       func(*Pass) error
	RunModule func(*ModulePass) error
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	ModulePath string

	diags []Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries one module-scope analyzer run over every loaded
// package at once. Module analyzers must key functions, types, and fields
// by string identity (package path, type name, member name) rather than
// types.Object identity: a package and its test variant are type-checked
// separately, so the "same" declaration appears as distinct objects.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Interferecheck, Guardedby, Detrange, Errchecklite, Confined, Dettaint}
}

// Run applies every matching analyzer to every package (and every module
// analyzer to the module as a whole), filters directive-suppressed
// findings, and returns the remainder sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	allIg := make(ignores)
	for _, pkg := range pkgs {
		ig := collectIgnores(pkg)
		for k, v := range ig {
			allIg[k] = v
		}
		out = append(out, directiveDiags(pkg)...)
		matchPath := strings.TrimSuffix(pkg.Path, "_test")
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if a.Match != nil && !a.Match(matchPath) {
				continue
			}
			pass := &Pass{
				Analyzer: a, Fset: pkg.Fset, Files: pkg.Files,
				Pkg: pkg.Types, Info: pkg.Info, ModulePath: pkg.ModulePath,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !ig.suppressed(d) {
					out = append(out, d)
				}
			}
		}
	}
	if len(pkgs) > 0 {
		for _, a := range analyzers {
			if a.RunModule == nil {
				continue
			}
			mp := &ModulePass{Analyzer: a, Fset: pkgs[0].Fset, Pkgs: pkgs}
			if err := a.RunModule(mp); err != nil {
				return nil, fmt.Errorf("lint: %s (module): %w", a.Name, err)
			}
			for _, d := range mp.diags {
				if !allIg.suppressed(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// ignoreDirective matches "//vislint:ignore name[,name...] [reason]".
var ignoreDirective = regexp.MustCompile(`^//vislint:ignore\s+([\w,]+)`)

// allowDirective matches "//lint:allow name[,name...] rationale". Unlike
// vislint:ignore, the rationale is mandatory: an allow without one is
// itself a (non-suppressible) finding, so every escape hatch in the tree
// records why it is sound.
var allowDirective = regexp.MustCompile(`^//lint:allow\s+([\w,]+)[ \t]*(.*)$`)

// ignores maps file:line to the analyzer names suppressed there.
type ignores map[string]map[string]bool

// collectIgnores scans a package's comments for vislint:ignore and
// lint:allow directives. A directive suppresses matching diagnostics on
// its own line and on the following line (so it can sit above a statement
// or trail it). lint:allow directives missing a rationale suppress
// nothing; directiveDiags reports them.
func collectIgnores(pkg *Package) ignores {
	ig := make(ignores)
	add := func(pos token.Position, names string) {
		for _, name := range strings.Split(names, ",") {
			for _, line := range []int{pos.Line, pos.Line + 1} {
				key := fmt.Sprintf("%s:%d", pos.Filename, line)
				if ig[key] == nil {
					ig[key] = make(map[string]bool)
				}
				ig[key][name] = true
			}
		}
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if m := ignoreDirective.FindStringSubmatch(c.Text); m != nil {
					add(pkg.Fset.Position(c.Pos()), m[1])
					continue
				}
				if m := allowDirective.FindStringSubmatch(c.Text); m != nil {
					if strings.TrimSpace(m[2]) == "" {
						continue // no rationale: keeps no findings quiet
					}
					add(pkg.Fset.Position(c.Pos()), m[1])
				}
			}
		}
	}
	return ig
}

// directiveDiags reports malformed suppression directives — today, a
// lint:allow with no rationale. These are attributed to the pseudo-analyzer
// "directive" and cannot themselves be suppressed.
func directiveDiags(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowDirective.FindStringSubmatch(c.Text)
				if m == nil || strings.TrimSpace(m[2]) != "" {
					continue
				}
				out = append(out, Diagnostic{
					Pos:      pkg.Fset.Position(c.Pos()),
					Analyzer: "directive",
					Message:  "lint:allow requires a rationale: //lint:allow " + m[1] + " <why this is sound>",
				})
			}
		}
	}
	return out
}

func (ig ignores) suppressed(d Diagnostic) bool {
	key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
	return ig[key][d.Analyzer] || ig[key]["all"]
}
