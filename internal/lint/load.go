// Package lint implements vislint, a suite of static analyzers that
// machine-check the runtime's visibility invariants — the properties the
// paper's correctness argument (§3–§7) relies on but the Go type system
// cannot see:
//
//   - interference decisions must go through privilege.Interferes (or the
//     privilege package's accessors), never ad-hoc comparisons of
//     privilege.Kind or privilege.Privilege values (interferecheck);
//   - mutex-guarded scheduler and event state, annotated with
//     "// guarded by <mu>" field comments, must only be touched with the
//     guard held (guardedby);
//   - analyzer hot paths must not range over maps, because map-iteration
//     nondeterminism silently breaks painter ordering and cross-check
//     reproducibility (detrange);
//   - error returns from the module's own API must not be dropped
//     (errchecklite).
//
// The framework mirrors golang.org/x/tools/go/analysis in miniature, built
// only on the standard library: packages are loaded with go/parser and
// type-checked with go/types, resolving imports through compiler export
// data located by `go list -export`. This keeps the module dependency-free
// while still giving every analyzer full type information.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// Path is the import path with any test-variant suffix stripped:
	// "p" for a package (or its test-augmented variant), "p_test" for an
	// external test package.
	Path string
	// ModulePath is the enclosing module's path ("" outside a module,
	// e.g. for analysistest packages).
	ModulePath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	ForTest    string
	DepOnly    bool
	GoFiles    []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load lists, parses, and type-checks every module package matched by
// patterns (relative to dir), including the test variants the go tool
// synthesizes: "p [p.test]" (p recompiled with its in-package test files)
// and "p_test [p.test]" (the external test package). Every module package
// is checked from source in `go list -deps` order so that all module
// cross-references share one set of type objects; only standard-library
// imports resolve through compiler export data (located by
// `go list -export`), which keeps the loader working offline and
// dependency-free. Each entry's ImportMap redirects imports into the right
// variant, exactly as the go tool compiles tests.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-test", "-export", "-json"}, patterns...)
	out, err := runGoList(dir, args)
	if err != nil {
		return nil, err
	}

	var entries []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		// "p.test" is the synthesized test main (a generated file in the
		// build cache); it is never lint-relevant.
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		q := p
		entries = append(entries, &q)
	}

	exports := make(map[string]string)
	hasVariant := make(map[string]bool)
	for _, p := range entries {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		// "p [p.test]" supersedes plain p as a lint target: same files
		// plus the in-package tests.
		if p.ForTest != "" && !strings.Contains(p.ImportPath, "_test [") {
			hasVariant[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})
	mem := make(map[string]*types.Package)

	var pkgs []*Package
	// `go list -deps` emits dependencies before dependents, so checking in
	// listing order populates mem bottom-up.
	for _, p := range entries {
		if p.Standard || p.Module == nil {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		im := &variantImporter{importMap: p.ImportMap, mem: mem, base: gc}
		pkg, err := checkFiles(fset, im, p.Dir, cleanPath(p.ImportPath), p.Module.Path, p.GoFiles)
		if err != nil {
			return nil, err
		}
		mem[p.ImportPath] = pkg.Types
		if p.DepOnly || (p.ForTest == "" && hasVariant[p.ImportPath]) {
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// cleanPath strips the go tool's test-variant suffix:
// "p [p.test]" -> "p", "p_test [p.test]" -> "p_test".
func cleanPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// checkFiles parses and type-checks one package's files.
func checkFiles(fset *token.FileSet, im types.Importer, dir, path, modPath string, names []string) (*Package, error) {
	if len(names) == 0 {
		return &Package{Path: path, ModulePath: modPath, Fset: fset, Types: types.NewPackage(path, "_empty"), Info: newInfo()}, nil
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := newInfo()
	var errs []error
	conf := types.Config{
		Importer: im,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(errs) > 0 {
		var b strings.Builder
		for i, e := range errs {
			if i > 0 {
				b.WriteString("\n")
			}
			fmt.Fprintf(&b, "\t%v", e)
		}
		return nil, fmt.Errorf("lint: type errors in %s:\n%s", path, b.String())
	}
	return &Package{Path: path, ModulePath: modPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// variantImporter gives one package the go tool's view of its imports:
// the package's ImportMap redirects paths into test variants, module
// packages resolve to the in-memory copies checked earlier in this load,
// and everything else (the standard library) falls back to compiler
// export data.
type variantImporter struct {
	importMap map[string]string
	mem       map[string]*types.Package
	base      types.Importer
}

func (im *variantImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := im.importMap[path]; ok {
		path = mapped
	}
	if p, ok := im.mem[path]; ok {
		return p, nil
	}
	return im.base.Import(path)
}

// runGoList executes `go <args>` in dir and returns stdout, surfacing
// stderr in the error.
func runGoList(dir string, args []string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return stdout.Bytes(), nil
}

// sortedKeys returns the keys of m in ascending order. Analyzer code uses
// it to keep its own reports deterministic.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
