// Benchmarks regenerating the paper's evaluation (§8). There is one
// benchmark per figure; each sub-benchmark is one (configuration, node
// count) cell and reports the figure's metric:
//
//   - Figures 12-14 (initialization time): init_s
//   - Figures 15-17 (weak scaling): units/s/node (points, wires, zones)
//
// The simulated node counts default to 1..32 so the full `go test
// -bench=. ./...` suite fits comfortably inside Go's default test timeout;
// set VIS_BENCH_MAX_NODES=512 to regenerate the paper's full range
// (cmd/visbench sweeps the full range by default and prints the assembled
// figures).
//
// Additional benchmarks measure the real (wall-clock) cost of the
// analyzers themselves and ablate the optimizations called out in §5.1 and
// §6.1.
package visibility_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"visibility/internal/algo"
	"visibility/internal/apps"
	"visibility/internal/apps/circuit"
	"visibility/internal/apps/pennant"
	"visibility/internal/apps/stencil"
	"visibility/internal/core"
	"visibility/internal/harness"
	"visibility/internal/obs"
	"visibility/internal/obs/recorder"
	"visibility/internal/paint"
	"visibility/internal/raycast"
	"visibility/internal/testutil"
	"visibility/internal/warnock"
)

func benchNodeCounts() []int {
	max := 32
	if s := os.Getenv("VIS_BENCH_MAX_NODES"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			max = v
		}
	}
	return harness.NodeSweep(max)
}

func benchFigure(b *testing.B, app apps.Builder, appName, metric string) {
	for _, cfg := range harness.PaperConfigs() {
		for _, nodes := range benchNodeCounts() {
			name := fmt.Sprintf("%s/nodes=%d", harness.SystemName(cfg.Algorithm, cfg.DCR), nodes)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r, err := harness.Run(harness.Config{
						App: app, AppName: appName,
						Algorithm: cfg.Algorithm, DCR: cfg.DCR,
						Nodes: nodes, MeasureIters: 2,
					})
					if err != nil {
						b.Fatal(err)
					}
					if metric == "init" {
						b.ReportMetric(r.InitTime, "init_s")
					} else {
						b.ReportMetric(r.ThroughputPerNode, r.UnitName+"/s/node")
					}
				}
			})
		}
	}
}

// Figures 12-14: initialization time.

func BenchmarkFig12StencilInit(b *testing.B) { benchFigure(b, stencil.New, "stencil", "init") }
func BenchmarkFig13CircuitInit(b *testing.B) { benchFigure(b, circuit.New, "circuit", "init") }
func BenchmarkFig14PennantInit(b *testing.B) { benchFigure(b, pennant.New, "pennant", "init") }

// Figures 15-17: weak-scaling throughput per node.

func BenchmarkFig15StencilWeak(b *testing.B) { benchFigure(b, stencil.New, "stencil", "weak") }
func BenchmarkFig16CircuitWeak(b *testing.B) { benchFigure(b, circuit.New, "circuit", "weak") }
func BenchmarkFig17PennantWeak(b *testing.B) { benchFigure(b, pennant.New, "pennant", "weak") }

// BenchmarkAnalyzePerLaunch measures the real Go-side cost of one launch's
// analysis for each algorithm on the circuit workload at 16 nodes — the
// constant factors behind the simulated op counts.
func BenchmarkAnalyzePerLaunch(b *testing.B) {
	for _, name := range algo.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			newAn, err := algo.Lookup(name)
			if err != nil {
				b.Fatal(err)
			}
			inst := circuit.New(16)
			an := newAn(inst.Tree, core.Options{})
			stream := core.NewStream(inst.Tree)
			// Warm up: initialization iteration.
			launches := inst.Emit(stream, 0)
			for _, l := range launches {
				an.Analyze(l.Task)
			}
			b.ResetTimer()
			n := 0
			for i := 0; i < b.N; i++ {
				if n == 0 {
					b.StopTimer()
					launches = inst.Emit(stream, i+1)
					n = len(launches)
					b.StartTimer()
				}
				n--
				an.Analyze(launches[len(launches)-1-n].Task)
			}
		})
	}
}

// BenchmarkObsOverhead is the observability-layer overhead guard: it
// measures steady-state raycast analysis throughput with span
// instrumentation absent (nil Spans in core.Options — the zero value every
// non-instrumented caller gets), with a span buffer installed but disabled
// (the state a long-lived process sits in between trace captures), with
// span recording enabled, and with the flight recorder journaling in both
// its disabled and always-on states. The instrumented-but-off
// configurations must stay within noise (<3%) of absent — CI enforces
// this — because the fast paths are one nil check or one atomic load;
// any measurable gap is a regression in the obs layer. The always-on
// recorder case is held to the same bound: journaling an event is an
// atomic load plus a mutex-guarded ring store on a coarse (per-split,
// per-materialize) path, which must stay invisible next to the analysis
// itself. Dependence-provenance capture (core.Options.Prov) gets the same
// pair: prov-disabled is the nil fast path every non-explaining caller
// takes and is held to the <3% bound; prov-enabled records an EdgeReason
// per discovered edge and a cost sample per launch, and is measured for
// information only.
func BenchmarkObsOverhead(b *testing.B) {
	disabled := obs.NewBuffer(1 << 12)
	disabled.SetEnabled(false)
	enabled := obs.NewBuffer(1 << 12)
	enabled.SetEnabled(true)
	recOff := recorder.New(1 << 14)
	recOff.SetEnabled(false)
	recOn := recorder.New(1 << 14)
	cases := []struct {
		name string
		opts core.Options
	}{
		{"absent", core.Options{}},
		{"disabled", core.Options{Spans: disabled}},
		{"enabled", core.Options{Spans: enabled}},
		{"recorder-disabled", core.Options{Recorder: recOff}},
		{"recorder-enabled", core.Options{Recorder: recOn}},
		{"prov-disabled", core.Options{Prov: nil}},
		{"prov-enabled", core.Options{Prov: core.NewProvenance()}},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			inst := circuit.New(16)
			an := raycast.New(inst.Tree, tc.opts)
			stream := core.NewStream(inst.Tree)
			for _, l := range inst.Emit(stream, 0) {
				an.Analyze(l.Task)
			}
			iter := 1
			launches := inst.Emit(stream, iter)
			li := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if li == len(launches) {
					b.StopTimer()
					iter++
					launches = inst.Emit(stream, iter)
					li = 0
					b.StartTimer()
				}
				an.Analyze(launches[li].Task)
				li++
			}
		})
	}
}

// BenchmarkAblationWarnockMemo quantifies §6.1's memoization: steady-state
// analysis cost with and without restarting lookups at memoized nodes.
func BenchmarkAblationWarnockMemo(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "memo=on"
		if disable {
			name = "memo=off"
		}
		b.Run(name, func(b *testing.B) {
			tree, p, g := testutil.GraphTree()
			w := warnock.New(tree, core.Options{})
			w.DisableMemo = disable
			s := core.NewStream(tree)
			for i := 0; i < 3; i++ { // warm up: build the refinement
				testutil.LaunchT1(s, p, g, i)
				testutil.LaunchT2(s, p, g, i)
			}
			for _, t := range s.Tasks {
				w.Analyze(t)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Analyze(testutil.LaunchT1(s, p, g, i%3))
			}
			b.ReportMetric(float64(w.Stats().BVHVisited)/float64(b.N), "bvh-visits/launch")
		})
	}
}

// BenchmarkAblationPainterPruning quantifies §5.1's occlusion pruning: the
// painter's per-launch scan cost with and without deleting occluded
// history items. Without pruning the history grows with the stream, so the
// gap widens as b.N grows.
func BenchmarkAblationPainterPruning(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "pruning=on"
		if disable {
			name = "pruning=off"
		}
		b.Run(name, func(b *testing.B) {
			tree, p, g := testutil.GraphTree()
			pa := paint.NewPainter(tree, core.Options{})
			pa.DisablePruning = disable
			s := core.NewStream(tree)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pa.Analyze(testutil.LaunchT1(s, p, g, i%3))
				pa.Analyze(testutil.LaunchT2(s, p, g, i%3))
			}
			b.ReportMetric(float64(pa.Stats().EntriesScanned)/float64(b.N), "entries/launch")
		})
	}
}

// BenchmarkEndToEndExecution measures the full public-API stack (analysis
// plus parallel value execution) on the Figure 1 loop.
func BenchmarkEndToEndExecution(b *testing.B) {
	for _, alg := range []string{"raycast", "warnock", "paint"} {
		alg := alg
		b.Run(alg, func(b *testing.B) { rtBench(b, alg) })
	}
}

func rtBench(b *testing.B, alg string) {
	tree, p, g := testutil.GraphTree()
	newAn, _ := algo.Lookup(alg)
	an := newAn(tree, core.Options{})
	eng := core.NewEngine(tree, an, testutil.FullInit(tree))
	s := core.NewStream(tree)
	k := core.HashKernel{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Launch(testutil.LaunchT1(s, p, g, i%3), k)
		eng.Launch(testutil.LaunchT2(s, p, g, i%3), k)
	}
}

// BenchmarkDependenceAnalysisScaling measures how per-launch analysis cost
// scales with machine size for each algorithm (circuit steady state) — the
// Go-measured counterpart of the weak-scaling simulation.
func BenchmarkDependenceAnalysisScaling(b *testing.B) {
	for _, nodes := range []int{4, 16, 64} {
		for _, name := range []string{"paint", "warnock", "raycast"} {
			name, nodes := name, nodes
			b.Run(fmt.Sprintf("%s/nodes=%d", name, nodes), func(b *testing.B) {
				newAn, _ := algo.Lookup(name)
				inst := circuit.New(nodes)
				an := newAn(inst.Tree, core.Options{})
				stream := core.NewStream(inst.Tree)
				for _, l := range inst.Emit(stream, 0) {
					an.Analyze(l.Task)
				}
				iter := 1
				launches := inst.Emit(stream, iter)
				li := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if li == len(launches) {
						b.StopTimer()
						iter++
						launches = inst.Emit(stream, iter)
						li = 0
						b.StartTimer()
					}
					an.Analyze(launches[li].Task)
					li++
				}
			})
		}
	}
}
