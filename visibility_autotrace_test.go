package visibility_test

import (
	"testing"

	"visibility"
)

// autoLoopRun executes the same unbracketed loop app under cfg and
// returns the final field contents.
func autoLoopRun(t *testing.T, cfg visibility.Config, iters int) ([]float64, *visibility.Runtime, *visibility.Region) {
	t.Helper()
	rt := visibility.New(cfg)
	g := rt.CreateRegion("g", visibility.Line(0, 15), "v")
	blocks := g.PartitionEqual("B", 4)
	for it := 0; it < iters; it++ {
		for i := 0; i < 4; i++ {
			rt.Launch(visibility.TaskSpec{
				Name:     "step",
				Accesses: []visibility.Access{visibility.Write(blocks.Sub(i), "v")},
				Kernel: visibility.Kernel{Write: func(_ int, _ visibility.Point, in float64) float64 {
					return in + 1
				}},
			})
		}
	}
	snap := rt.Read(g, "v")
	out := make([]float64, 16)
	for x := range out {
		out[x], _ = snap.Get(visibility.Pt(int64(x)))
	}
	return out, rt, g
}

// TestPublicAutoTrace drives the loop with no brackets at all: the
// runtime must detect, record, and replay it on its own, and the final
// contents must match an untraced runtime exactly.
func TestPublicAutoTrace(t *testing.T) {
	const iters = 8
	want, plain, _ := autoLoopRun(t, visibility.Config{}, iters)
	defer plain.Close()
	got, rt, g := autoLoopRun(t, visibility.Config{AutoTrace: true, Validate: true}, iters)
	defer rt.Close()
	for x := range want {
		if got[x] != want[x] {
			t.Fatalf("point %d = %v under autotracing, want %v", x, got[x], want[x])
		}
	}
	st := rt.AutoTraceStats(g)
	if st.Candidates != 1 {
		t.Errorf("candidates = %d, want 1", st.Candidates)
	}
	// Iterations 0-1 detect, 2 records, 3-7 replay.
	if st.Trace.Recorded != 4 || st.Trace.Replayed != 5*4 {
		t.Errorf("recorded/replayed = %d/%d, want 4/20", st.Trace.Recorded, st.Trace.Replayed)
	}
	if st.Aborts != 0 || st.Trace.Invalidations != 0 {
		t.Errorf("aborts/invalidations = %d/%d, want 0/0", st.Aborts, st.Trace.Invalidations)
	}
	// TraceStats surfaces the automatic tracer's counters too.
	if rt.TraceStats(g).Replayed != st.Trace.Replayed {
		t.Error("TraceStats does not reflect the automatic tracer")
	}
}

func TestAutoTraceExclusivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Tracing+AutoTrace should panic")
		}
	}()
	visibility.New(visibility.Config{Tracing: true, AutoTrace: true})
}

// TestAutoTraceStatsZero checks the accessor is safe without AutoTrace.
func TestAutoTraceStatsZero(t *testing.T) {
	rt := visibility.New(visibility.Config{})
	defer rt.Close()
	g := rt.CreateRegion("g", visibility.Line(0, 3), "v")
	rt.Read(g, "v")
	st := rt.AutoTraceStats(g)
	if st.Candidates != 0 || st.Instances != 0 || st.Aborts != 0 ||
		st.Trace.Recorded != 0 || st.Trace.Replayed != 0 || st.Trace.Invalidations != 0 {
		t.Errorf("AutoTraceStats without AutoTrace = %+v", st)
	}
}
