package visibility_test

import (
	"bytes"
	"strings"
	"testing"

	"visibility"
)

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	rt := visibility.New(visibility.Config{Validate: true})
	defer rt.Close()
	cells := rt.CreateRegion("cells", visibility.Line(0, 31), "a", "b")
	cells.Init("b", func(p visibility.Point) float64 { return -float64(p.C[0]) })
	blocks := cells.PartitionEqual("blocks", 4)
	windows := cells.Partition("windows", []visibility.IndexSpace{
		visibility.Line(4, 19), visibility.Line(12, 27),
	})

	for i := 0; i < 4; i++ {
		rt.Launch(visibility.TaskSpec{
			Name:     "w",
			Accesses: []visibility.Access{visibility.Write(blocks.Sub(i), "a")},
			Kernel: visibility.Kernel{Write: func(_ int, p visibility.Point, _ float64) float64 {
				return float64(p.C[0] * p.C[0])
			}},
		})
	}
	rt.Launch(visibility.TaskSpec{
		Name:     "bump",
		Accesses: []visibility.Access{visibility.Reduce(visibility.OpSum, windows.Sub(0), "a")},
		Kernel:   visibility.Kernel{Reduce: func(_ int, _ visibility.Point) float64 { return 1000 }},
	})

	var buf bytes.Buffer
	if err := rt.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	rt2, roots, err := visibility.Restore(strings.NewReader(buf.String()), visibility.Config{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	cells2, ok := roots["cells"]
	if !ok {
		t.Fatal("restored runtime missing region")
	}

	// Structure survived: same partitions, same pieces.
	parts := cells2.Partitions()
	if len(parts) != 2 || parts[0].PartitionName() != "blocks" || parts[1].PartitionName() != "windows" {
		t.Fatalf("restored partitions = %v", parts)
	}
	if !parts[0].Disjoint() || !parts[0].Complete() {
		t.Error("restored blocks partition lost properties")
	}
	if parts[1].Disjoint() {
		t.Error("restored windows partition should be aliased")
	}
	if !parts[1].Sub(1).Space().Equal(visibility.Line(12, 27)) {
		t.Errorf("restored piece = %v", parts[1].Sub(1).Space())
	}

	// Data survived: values equal the pre-checkpoint coherent contents.
	snap := rt2.Read(cells2, "a")
	for x := int64(0); x < 32; x++ {
		want := float64(x * x)
		if x >= 4 && x <= 19 {
			want += 1000
		}
		if v, _ := snap.Get(visibility.Pt(x)); v != want {
			t.Fatalf("restored a[%d] = %v, want %v", x, v, want)
		}
	}
	snapB := rt2.Read(cells2, "b")
	if v, _ := snapB.Get(visibility.Pt(7)); v != -7 {
		t.Errorf("restored b[7] = %v, want -7", v)
	}

	// The restored runtime keeps working: launch against restored pieces.
	rt2.Launch(visibility.TaskSpec{
		Name:     "w2",
		Accesses: []visibility.Access{visibility.Write(parts[0].Sub(0), "a")},
		Kernel:   visibility.Kernel{Write: func(_ int, _ visibility.Point, in float64) float64 { return in + 1 }},
	})
	snap = rt2.Read(cells2, "a")
	if v, _ := snap.Get(visibility.Pt(0)); v != 1 {
		t.Errorf("post-restore launch: a[0] = %v, want 1", v)
	}
}

func TestCheckpointBeforeAnyLaunch(t *testing.T) {
	rt := visibility.New(visibility.Config{})
	defer rt.Close()
	r := rt.CreateRegion("r", visibility.Line(0, 3), "v")
	r.Fill("v", 9)
	var buf bytes.Buffer
	if err := rt.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	rt2, roots, err := visibility.Restore(&buf, visibility.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	if v, _ := rt2.Read(roots["r"], "v").Get(visibility.Pt(2)); v != 9 {
		t.Errorf("restored value = %v, want 9", v)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, _, err := visibility.Restore(strings.NewReader("not json"), visibility.Config{}); err == nil {
		t.Error("expected decode error")
	}
	if _, _, err := visibility.Restore(strings.NewReader(`{"version":99}`), visibility.Config{}); err == nil {
		t.Error("expected version error")
	}
}

// TestRestoreRejectsCorruptInput feeds Restore the malformed shapes an
// untrusted checkpoint (e.g. the serving layer's restore endpoint) can
// carry; every one must come back as an error, never a panic.
func TestRestoreRejectsCorruptInput(t *testing.T) {
	region := func(mutate string) string {
		base := `{"name":"r","dim":1,"space":[[0,7]],"fields":["v"],"partitions":[],"values":{"v":[[0,1]]}}`
		if mutate != "" {
			base = mutate
		}
		return `{"version":1,"regions":[` + base + `]}`
	}
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"empty region name",
			region(`{"name":"","dim":1,"space":[[0,7]],"fields":["v"]}`),
			"empty name"},
		{"duplicate region names",
			`{"version":1,"regions":[` +
				`{"name":"r","dim":1,"space":[[0,7]],"fields":["v"]},` +
				`{"name":"r","dim":1,"space":[[0,7]],"fields":["v"]}]}`,
			"duplicate region name"},
		{"no fields",
			region(`{"name":"r","dim":1,"space":[[0,7]],"fields":[]}`),
			"no fields"},
		{"duplicate field names",
			region(`{"name":"r","dim":1,"space":[[0,7]],"fields":["v","v"]}`),
			"duplicate field"},
		{"dim zero",
			region(`{"name":"r","dim":0,"space":[[0,7]],"fields":["v"]}`),
			"dimension 0"},
		{"dim too large",
			region(`{"name":"r","dim":9,"space":[[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]],"fields":["v"]}`),
			"dimension 9"},
		{"rect row wrong length",
			region(`{"name":"r","dim":2,"space":[[0,7]],"fields":["v"]}`),
			"malformed rect"},
		{"inverted rect lo > hi",
			region(`{"name":"r","dim":1,"space":[[7,0]],"fields":["v"]}`),
			"lo > hi"},
		{"partition parent out of range",
			region(`{"name":"r","dim":1,"space":[[0,7]],"fields":["v"],` +
				`"partitions":[{"parent":99,"name":"p","pieces":[[[0,3]]]}]}`),
			"unknown parent"},
		{"partition parent negative",
			region(`{"name":"r","dim":1,"space":[[0,7]],"fields":["v"],` +
				`"partitions":[{"parent":-1,"name":"p","pieces":[[[0,3]]]}]}`),
			"unknown parent"},
		{"partition piece outside parent",
			region(`{"name":"r","dim":1,"space":[[0,7]],"fields":["v"],` +
				`"partitions":[{"parent":0,"name":"p","pieces":[[[0,30]]]}]}`),
			"not a subset"},
		{"partition piece malformed rect",
			region(`{"name":"r","dim":1,"space":[[0,7]],"fields":["v"],` +
				`"partitions":[{"parent":0,"name":"p","pieces":[[[3]]]}]}`),
			"malformed rect"},
		{"values for unknown field",
			region(`{"name":"r","dim":1,"space":[[0,7]],"fields":["v"],"values":{"w":[[0,1]]}}`),
			"unknown field"},
		{"value row wrong length",
			region(`{"name":"r","dim":1,"space":[[0,7]],"fields":["v"],"values":{"v":[[0]]}}`),
			"malformed value row"},
		{"value row outside region",
			region(`{"name":"r","dim":1,"space":[[0,7]],"fields":["v"],"values":{"v":[[55,1]]}}`),
			"outside region"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Restore panicked: %v", r)
				}
			}()
			rt, _, err := visibility.Restore(strings.NewReader(tc.in), visibility.Config{})
			if rt != nil {
				defer rt.Close()
			}
			if err == nil {
				t.Fatal("Restore accepted corrupt input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}
