package visibility_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"visibility"
	"visibility/internal/fault"
)

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	rt := visibility.New(visibility.Config{Validate: true})
	defer rt.Close()
	cells := rt.CreateRegion("cells", visibility.Line(0, 31), "a", "b")
	cells.Init("b", func(p visibility.Point) float64 { return -float64(p.C[0]) })
	blocks := cells.PartitionEqual("blocks", 4)
	windows := cells.Partition("windows", []visibility.IndexSpace{
		visibility.Line(4, 19), visibility.Line(12, 27),
	})

	for i := 0; i < 4; i++ {
		rt.Launch(visibility.TaskSpec{
			Name:     "w",
			Accesses: []visibility.Access{visibility.Write(blocks.Sub(i), "a")},
			Kernel: visibility.Kernel{Write: func(_ int, p visibility.Point, _ float64) float64 {
				return float64(p.C[0] * p.C[0])
			}},
		})
	}
	rt.Launch(visibility.TaskSpec{
		Name:     "bump",
		Accesses: []visibility.Access{visibility.Reduce(visibility.OpSum, windows.Sub(0), "a")},
		Kernel:   visibility.Kernel{Reduce: func(_ int, _ visibility.Point) float64 { return 1000 }},
	})

	var buf bytes.Buffer
	if err := rt.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	rt2, roots, err := visibility.Restore(strings.NewReader(buf.String()), visibility.Config{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	cells2, ok := roots["cells"]
	if !ok {
		t.Fatal("restored runtime missing region")
	}

	// Structure survived: same partitions, same pieces.
	parts := cells2.Partitions()
	if len(parts) != 2 || parts[0].PartitionName() != "blocks" || parts[1].PartitionName() != "windows" {
		t.Fatalf("restored partitions = %v", parts)
	}
	if !parts[0].Disjoint() || !parts[0].Complete() {
		t.Error("restored blocks partition lost properties")
	}
	if parts[1].Disjoint() {
		t.Error("restored windows partition should be aliased")
	}
	if !parts[1].Sub(1).Space().Equal(visibility.Line(12, 27)) {
		t.Errorf("restored piece = %v", parts[1].Sub(1).Space())
	}

	// Data survived: values equal the pre-checkpoint coherent contents.
	snap := rt2.Read(cells2, "a")
	for x := int64(0); x < 32; x++ {
		want := float64(x * x)
		if x >= 4 && x <= 19 {
			want += 1000
		}
		if v, _ := snap.Get(visibility.Pt(x)); v != want {
			t.Fatalf("restored a[%d] = %v, want %v", x, v, want)
		}
	}
	snapB := rt2.Read(cells2, "b")
	if v, _ := snapB.Get(visibility.Pt(7)); v != -7 {
		t.Errorf("restored b[7] = %v, want -7", v)
	}

	// The restored runtime keeps working: launch against restored pieces.
	rt2.Launch(visibility.TaskSpec{
		Name:     "w2",
		Accesses: []visibility.Access{visibility.Write(parts[0].Sub(0), "a")},
		Kernel:   visibility.Kernel{Write: func(_ int, _ visibility.Point, in float64) float64 { return in + 1 }},
	})
	snap = rt2.Read(cells2, "a")
	if v, _ := snap.Get(visibility.Pt(0)); v != 1 {
		t.Errorf("post-restore launch: a[0] = %v, want 1", v)
	}
}

// ckptFixture builds a checkpoint with structure worth corrupting — two
// fields, a disjoint and an aliased partition, launched writes and a
// reduction — and returns its bytes plus the coherent per-point contents
// it encodes, keyed field → coordinate.
func ckptFixture(t *testing.T) ([]byte, map[string]map[int64]float64) {
	t.Helper()
	rt := visibility.New(visibility.Config{})
	defer rt.Close()
	cells := rt.CreateRegion("cells", visibility.Line(0, 31), "a", "b")
	cells.Init("b", func(p visibility.Point) float64 { return -float64(p.C[0]) })
	blocks := cells.PartitionEqual("blocks", 4)
	windows := cells.Partition("windows", []visibility.IndexSpace{
		visibility.Line(4, 19), visibility.Line(12, 27),
	})
	for i := 0; i < 4; i++ {
		rt.Launch(visibility.TaskSpec{
			Name:     "w",
			Accesses: []visibility.Access{visibility.Write(blocks.Sub(i), "a")},
			Kernel: visibility.Kernel{Write: func(_ int, p visibility.Point, _ float64) float64 {
				return float64(p.C[0] * p.C[0])
			}},
		})
	}
	rt.Launch(visibility.TaskSpec{
		Name:     "bump",
		Accesses: []visibility.Access{visibility.Reduce(visibility.OpSum, windows.Sub(0), "a")},
		Kernel:   visibility.Kernel{Reduce: func(_ int, _ visibility.Point) float64 { return 1000 }},
	})

	var buf bytes.Buffer
	if err := rt.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	want := make(map[string]map[int64]float64)
	for _, f := range []string{"a", "b"} {
		want[f] = make(map[int64]float64)
		rt.Read(cells, f).Each(func(p visibility.Point, v float64) {
			want[f][p.C[0]] = v
		})
	}
	return buf.Bytes(), want
}

// tryRestore runs Restore under a panic guard: any panic is the bug the
// truncation/corruption tests exist to catch. On success it checks the
// restored contents equal the fixture's — the "round-trips or errors,
// never silently diverges" contract — and closes the runtime.
func tryRestore(t *testing.T, in []byte, want map[string]map[int64]float64, what string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Restore panicked on %s: %v", what, r)
		}
	}()
	rt, roots, err := visibility.Restore(bytes.NewReader(in), visibility.Config{})
	if err != nil {
		return
	}
	defer rt.Close()
	cells, ok := roots["cells"]
	if !ok {
		t.Fatalf("%s: restore succeeded but region is gone", what)
	}
	for f, pts := range want {
		snap := rt.Read(cells, f)
		for x, wv := range pts {
			if v, ok := snap.Get(visibility.Pt(x)); !ok || v != wv {
				t.Fatalf("%s: restore succeeded but %s[%d] = %v (ok=%v), want %v — silent divergence", what, f, x, v, ok, wv)
			}
		}
	}
}

// TestRestoreTruncatedInput truncates a valid checkpoint at every byte
// offset — generated, not hand-picked, so every field boundary in the
// encoding is hit — and requires Restore to error (or fully round-trip,
// for truncations that only drop trailing whitespace), never panic.
func TestRestoreTruncatedInput(t *testing.T) {
	ckpt, want := ckptFixture(t)
	step := 1
	if testing.Short() {
		step = 17 // prime stride still lands on every kind of boundary
	}
	for off := 0; off < len(ckpt); off += step {
		tryRestore(t, ckpt[:off], want, fmt.Sprintf("truncation at offset %d", off))
	}
}

// TestRestoreBitFlipInput flips one bit in every byte of a valid
// checkpoint (bit index rotating with the offset) and requires each
// corrupted image to either restore to identical contents or error —
// the checksum makes silent divergence structurally impossible.
func TestRestoreBitFlipInput(t *testing.T) {
	ckpt, want := ckptFixture(t)
	step := 1
	if testing.Short() {
		step = 13
	}
	for off := 0; off < len(ckpt); off += step {
		mut := append([]byte(nil), ckpt...)
		mut[off] ^= 1 << (off % 8)
		tryRestore(t, mut, want, "bit flip")
	}
}

// TestCheckpointFaultPlaneCorruption drives the same property through the
// fault plane's own corruption sites: an armed checkpoint.encode.flip
// corrupts the written image, an armed checkpoint.restore.flip corrupts
// the read image, and in both directions the restore must round-trip or
// error. Ten seeds per site keep the flipped offset moving.
func TestCheckpointFaultPlaneCorruption(t *testing.T) {
	ckpt, want := ckptFixture(t)
	for seed := int64(1); seed <= 10; seed++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d: Restore panicked: %v", seed, r)
				}
			}()
			inj, err := fault.NewFromString(fmt.Sprintf("seed=%d;checkpoint.restore.flip=every=1,max=1", seed))
			if err != nil {
				t.Fatal(err)
			}
			rt, roots, err := visibility.Restore(bytes.NewReader(ckpt), visibility.Config{Faults: inj})
			if inj.Fires(fault.RestoreCorrupt) != 1 {
				t.Fatalf("seed %d: restore flip did not fire", seed)
			}
			if err != nil {
				return
			}
			defer rt.Close()
			for f, pts := range want {
				snap := rt.Read(roots["cells"], f)
				for x, wv := range pts {
					if v, _ := snap.Get(visibility.Pt(x)); v != wv {
						t.Fatalf("seed %d: corrupted restore silently diverged at %s[%d]", seed, f, x)
					}
				}
			}
		}()
	}

	// Encode-side: the corrupted image a faulty writer produces must be
	// caught by the fault-free reader.
	for seed := int64(1); seed <= 10; seed++ {
		inj, err := fault.NewFromString(fmt.Sprintf("seed=%d;checkpoint.encode.flip=every=1,max=1", seed+100))
		if err != nil {
			t.Fatal(err)
		}
		rt := visibility.New(visibility.Config{Faults: inj})
		r := rt.CreateRegion("cells", visibility.Line(0, 15), "a", "b")
		r.Fill("a", 3)
		r.Init("b", func(p visibility.Point) float64 { return float64(p.C[0]) })
		var buf bytes.Buffer
		if err := rt.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		rt.Close()
		if inj.Fires(fault.CkptCorrupt) != 1 {
			t.Fatalf("seed %d: encode flip did not fire", seed)
		}
		wantSmall := map[string]map[int64]float64{"a": {}, "b": {}}
		for x := int64(0); x <= 15; x++ {
			wantSmall["a"][x] = 3
			wantSmall["b"][x] = float64(x)
		}
		tryRestore(t, buf.Bytes(), wantSmall, "encode-side flip")
	}
}

func TestCheckpointBeforeAnyLaunch(t *testing.T) {
	rt := visibility.New(visibility.Config{})
	defer rt.Close()
	r := rt.CreateRegion("r", visibility.Line(0, 3), "v")
	r.Fill("v", 9)
	var buf bytes.Buffer
	if err := rt.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	rt2, roots, err := visibility.Restore(&buf, visibility.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	if v, _ := rt2.Read(roots["r"], "v").Get(visibility.Pt(2)); v != 9 {
		t.Errorf("restored value = %v, want 9", v)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, _, err := visibility.Restore(strings.NewReader("not json"), visibility.Config{}); err == nil {
		t.Error("expected decode error")
	}
	if _, _, err := visibility.Restore(strings.NewReader(`{"version":99}`), visibility.Config{}); err == nil {
		t.Error("expected version error")
	}
}

// TestRestoreRejectsCorruptInput feeds Restore the malformed shapes an
// untrusted checkpoint (e.g. the serving layer's restore endpoint) can
// carry; every one must come back as an error, never a panic.
func TestRestoreRejectsCorruptInput(t *testing.T) {
	region := func(mutate string) string {
		base := `{"name":"r","dim":1,"space":[[0,7]],"fields":["v"],"partitions":[],"values":{"v":[[0,1]]}}`
		if mutate != "" {
			base = mutate
		}
		return `{"version":1,"regions":[` + base + `]}`
	}
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"empty region name",
			region(`{"name":"","dim":1,"space":[[0,7]],"fields":["v"]}`),
			"empty name"},
		{"duplicate region names",
			`{"version":1,"regions":[` +
				`{"name":"r","dim":1,"space":[[0,7]],"fields":["v"]},` +
				`{"name":"r","dim":1,"space":[[0,7]],"fields":["v"]}]}`,
			"duplicate region name"},
		{"no fields",
			region(`{"name":"r","dim":1,"space":[[0,7]],"fields":[]}`),
			"no fields"},
		{"duplicate field names",
			region(`{"name":"r","dim":1,"space":[[0,7]],"fields":["v","v"]}`),
			"duplicate field"},
		{"dim zero",
			region(`{"name":"r","dim":0,"space":[[0,7]],"fields":["v"]}`),
			"dimension 0"},
		{"dim too large",
			region(`{"name":"r","dim":9,"space":[[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]],"fields":["v"]}`),
			"dimension 9"},
		{"rect row wrong length",
			region(`{"name":"r","dim":2,"space":[[0,7]],"fields":["v"]}`),
			"malformed rect"},
		{"inverted rect lo > hi",
			region(`{"name":"r","dim":1,"space":[[7,0]],"fields":["v"]}`),
			"lo > hi"},
		{"partition parent out of range",
			region(`{"name":"r","dim":1,"space":[[0,7]],"fields":["v"],` +
				`"partitions":[{"parent":99,"name":"p","pieces":[[[0,3]]]}]}`),
			"unknown parent"},
		{"partition parent negative",
			region(`{"name":"r","dim":1,"space":[[0,7]],"fields":["v"],` +
				`"partitions":[{"parent":-1,"name":"p","pieces":[[[0,3]]]}]}`),
			"unknown parent"},
		{"partition piece outside parent",
			region(`{"name":"r","dim":1,"space":[[0,7]],"fields":["v"],` +
				`"partitions":[{"parent":0,"name":"p","pieces":[[[0,30]]]}]}`),
			"not a subset"},
		{"partition piece malformed rect",
			region(`{"name":"r","dim":1,"space":[[0,7]],"fields":["v"],` +
				`"partitions":[{"parent":0,"name":"p","pieces":[[[3]]]}]}`),
			"malformed rect"},
		{"values for unknown field",
			region(`{"name":"r","dim":1,"space":[[0,7]],"fields":["v"],"values":{"w":[[0,1]]}}`),
			"unknown field"},
		{"value row wrong length",
			region(`{"name":"r","dim":1,"space":[[0,7]],"fields":["v"],"values":{"v":[[0]]}}`),
			"malformed value row"},
		{"value row outside region",
			region(`{"name":"r","dim":1,"space":[[0,7]],"fields":["v"],"values":{"v":[[55,1]]}}`),
			"outside region"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Restore panicked: %v", r)
				}
			}()
			rt, _, err := visibility.Restore(strings.NewReader(tc.in), visibility.Config{})
			if rt != nil {
				defer rt.Close()
			}
			if err == nil {
				t.Fatal("Restore accepted corrupt input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}
