package visibility_test

import (
	"bytes"
	"strings"
	"testing"

	"visibility"
)

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	rt := visibility.New(visibility.Config{Validate: true})
	defer rt.Close()
	cells := rt.CreateRegion("cells", visibility.Line(0, 31), "a", "b")
	cells.Init("b", func(p visibility.Point) float64 { return -float64(p.C[0]) })
	blocks := cells.PartitionEqual("blocks", 4)
	windows := cells.Partition("windows", []visibility.IndexSpace{
		visibility.Line(4, 19), visibility.Line(12, 27),
	})

	for i := 0; i < 4; i++ {
		rt.Launch(visibility.TaskSpec{
			Name:     "w",
			Accesses: []visibility.Access{visibility.Write(blocks.Sub(i), "a")},
			Kernel: visibility.Kernel{Write: func(_ int, p visibility.Point, _ float64) float64 {
				return float64(p.C[0] * p.C[0])
			}},
		})
	}
	rt.Launch(visibility.TaskSpec{
		Name:     "bump",
		Accesses: []visibility.Access{visibility.Reduce(visibility.OpSum, windows.Sub(0), "a")},
		Kernel:   visibility.Kernel{Reduce: func(_ int, _ visibility.Point) float64 { return 1000 }},
	})

	var buf bytes.Buffer
	if err := rt.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	rt2, roots, err := visibility.Restore(strings.NewReader(buf.String()), visibility.Config{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	cells2, ok := roots["cells"]
	if !ok {
		t.Fatal("restored runtime missing region")
	}

	// Structure survived: same partitions, same pieces.
	parts := cells2.Partitions()
	if len(parts) != 2 || parts[0].PartitionName() != "blocks" || parts[1].PartitionName() != "windows" {
		t.Fatalf("restored partitions = %v", parts)
	}
	if !parts[0].Disjoint() || !parts[0].Complete() {
		t.Error("restored blocks partition lost properties")
	}
	if parts[1].Disjoint() {
		t.Error("restored windows partition should be aliased")
	}
	if !parts[1].Sub(1).Space().Equal(visibility.Line(12, 27)) {
		t.Errorf("restored piece = %v", parts[1].Sub(1).Space())
	}

	// Data survived: values equal the pre-checkpoint coherent contents.
	snap := rt2.Read(cells2, "a")
	for x := int64(0); x < 32; x++ {
		want := float64(x * x)
		if x >= 4 && x <= 19 {
			want += 1000
		}
		if v, _ := snap.Get(visibility.Pt(x)); v != want {
			t.Fatalf("restored a[%d] = %v, want %v", x, v, want)
		}
	}
	snapB := rt2.Read(cells2, "b")
	if v, _ := snapB.Get(visibility.Pt(7)); v != -7 {
		t.Errorf("restored b[7] = %v, want -7", v)
	}

	// The restored runtime keeps working: launch against restored pieces.
	rt2.Launch(visibility.TaskSpec{
		Name:     "w2",
		Accesses: []visibility.Access{visibility.Write(parts[0].Sub(0), "a")},
		Kernel:   visibility.Kernel{Write: func(_ int, _ visibility.Point, in float64) float64 { return in + 1 }},
	})
	snap = rt2.Read(cells2, "a")
	if v, _ := snap.Get(visibility.Pt(0)); v != 1 {
		t.Errorf("post-restore launch: a[0] = %v, want 1", v)
	}
}

func TestCheckpointBeforeAnyLaunch(t *testing.T) {
	rt := visibility.New(visibility.Config{})
	defer rt.Close()
	r := rt.CreateRegion("r", visibility.Line(0, 3), "v")
	r.Fill("v", 9)
	var buf bytes.Buffer
	if err := rt.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	rt2, roots, err := visibility.Restore(&buf, visibility.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	if v, _ := rt2.Read(roots["r"], "v").Get(visibility.Pt(2)); v != 9 {
		t.Errorf("restored value = %v, want 9", v)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, _, err := visibility.Restore(strings.NewReader("not json"), visibility.Config{}); err == nil {
		t.Error("expected decode error")
	}
	if _, _, err := visibility.Restore(strings.NewReader(`{"version":99}`), visibility.Config{}); err == nil {
		t.Error("expected version error")
	}
}
