package visibility_test

import (
	"sync"
	"testing"
	"time"

	"visibility"
)

func TestPartitionImageAndMinus(t *testing.T) {
	rt := visibility.New(visibility.Config{Validate: true})
	defer rt.Close()
	n := int64(12)
	g := rt.CreateRegion("g", visibility.Line(0, n-1), "v")
	primary := g.PartitionEqual("P", 3)

	neighbors := func(p visibility.Point) []visibility.Point {
		return []visibility.Point{
			visibility.Pt((p.C[0] - 1 + n) % n),
			visibility.Pt((p.C[0] + 1) % n),
		}
	}
	reach := g.PartitionImage("reach", primary, neighbors)
	ghost := reach.Minus("G", primary)

	// Ghost of piece 0 (cells 0-3): neighbors 11 and 4.
	want := visibility.Union(visibility.Points(11), visibility.Points(4))
	if !ghost.Sub(0).Space().Equal(want) {
		t.Errorf("ghost[0] = %v, want %v", ghost.Sub(0).Space(), want)
	}
	if ghost.Sub(0).Space().Overlaps(primary.Sub(0).Space()) {
		t.Error("ghost must not include the piece itself")
	}

	// The derived partition participates in coherence like any other.
	for i := 0; i < 3; i++ {
		rt.Launch(visibility.TaskSpec{
			Name:     "w",
			Accesses: []visibility.Access{visibility.Write(primary.Sub(i), "v")},
			Kernel: visibility.Kernel{Write: func(_ int, p visibility.Point, _ float64) float64 {
				return float64(p.C[0])
			}},
		})
	}
	rt.Launch(visibility.TaskSpec{
		Name:     "halo-sum",
		Accesses: []visibility.Access{visibility.Reduce(visibility.OpSum, ghost.Sub(0), "v")},
		Kernel:   visibility.Kernel{Reduce: func(_ int, _ visibility.Point) float64 { return 100 }},
	})
	snap := rt.Read(g, "v")
	if v, _ := snap.Get(visibility.Pt(4)); v != 104 {
		t.Errorf("cell 4 = %v, want 104", v)
	}
	if v, _ := snap.Get(visibility.Pt(5)); v != 5 {
		t.Errorf("cell 5 = %v, want 5", v)
	}
}

func TestPartitionPreimage(t *testing.T) {
	rt := visibility.New(visibility.Config{})
	defer rt.Close()
	// Cells 0-9 map to owners 0-1 by halves; preimage of the owner
	// partition groups cells by where they map.
	g := rt.CreateRegion("g", visibility.Line(0, 9), "v")
	owners := g.Partition("O", []visibility.IndexSpace{
		visibility.Line(0, 4), visibility.Line(5, 9),
	})
	pre := g.PartitionPreimage("pre", owners, func(p visibility.Point) []visibility.Point {
		return []visibility.Point{visibility.Pt((p.C[0] * 7) % 10)}
	})
	for i := 0; i < pre.Len(); i++ {
		pre.Sub(i).Space().Each(func(p visibility.Point) bool {
			target := (p.C[0] * 7) % 10
			if !owners.Sub(i).Space().Contains(visibility.Pt(target)) {
				t.Errorf("cell %d in preimage %d but maps to %d", p.C[0], i, target)
			}
			return true
		})
	}
}

func TestPartitionByColor(t *testing.T) {
	rt := visibility.New(visibility.Config{})
	defer rt.Close()
	g := rt.CreateRegion("g", visibility.Line(0, 9), "v")
	par := g.PartitionByColor("par", 2, func(p visibility.Point) int {
		return int(p.C[0] % 2)
	})
	if !par.Disjoint() || !par.Complete() {
		t.Error("parity coloring should be disjoint and complete")
	}
	if par.Sub(1).Space().Volume() != 5 || !par.Sub(1).Space().Contains(visibility.Pt(7)) {
		t.Errorf("odd piece = %v", par.Sub(1).Space())
	}
}

func TestMinusLengthMismatchPanics(t *testing.T) {
	rt := visibility.New(visibility.Config{})
	g := rt.CreateRegion("g", visibility.Line(0, 9), "v")
	a := g.PartitionEqual("a", 2)
	b := g.PartitionEqual("b", 5)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	a.Minus("bad", b)
}

func TestPublicTracing(t *testing.T) {
	rt := visibility.New(visibility.Config{Tracing: true, Validate: true})
	defer rt.Close()
	g := rt.CreateRegion("g", visibility.Line(0, 15), "v")
	blocks := g.PartitionEqual("B", 4)

	loop := func() {
		for i := 0; i < 4; i++ {
			rt.Launch(visibility.TaskSpec{
				Name:     "step",
				Accesses: []visibility.Access{visibility.Write(blocks.Sub(i), "v")},
				Kernel: visibility.Kernel{Write: func(_ int, _ visibility.Point, in float64) float64 {
					return in + 1
				}},
			})
		}
	}
	loop() // warm-up outside any trace
	for it := 0; it < 5; it++ {
		rt.BeginTrace(g, 1)
		loop()
		rt.EndTrace(g)
	}
	snap := rt.Read(g, "v")
	if v, _ := snap.Get(visibility.Pt(3)); v != 6 {
		t.Errorf("value = %v, want 6", v)
	}
	st := rt.TraceStats(g)
	if st.Recorded != 4 || st.Replayed != 16 {
		t.Errorf("trace stats = %+v, want 4 recorded / 16 replayed", st)
	}
}

func TestTracingMisusePanics(t *testing.T) {
	rt := visibility.New(visibility.Config{})
	g := rt.CreateRegion("g", visibility.Line(0, 3), "v")
	defer func() {
		if recover() == nil {
			t.Error("BeginTrace without Config.Tracing should panic")
		}
	}()
	rt.BeginTrace(g, 1)
}

func TestAfterFutures(t *testing.T) {
	// Validate mode would run each Body twice (sequential + parallel);
	// keep the observed order simple.
	rt := visibility.New(visibility.Config{})
	defer rt.Close()
	g := rt.CreateRegion("g", visibility.Line(0, 7), "v")
	halves := g.PartitionEqual("H", 2)

	var order []string
	var mu sync.Mutex
	note := func(s string) func([]*visibility.Snapshot) {
		return func([]*visibility.Snapshot) {
			time.Sleep(time.Millisecond)
			mu.Lock()
			order = append(order, s)
			mu.Unlock()
		}
	}
	// Two region-independent tasks, explicitly ordered by a future.
	f := rt.Launch(visibility.TaskSpec{
		Name:     "producer",
		Accesses: []visibility.Access{visibility.Write(halves.Sub(0), "v")},
		Kernel:   visibility.Kernel{Body: note("producer")},
	})
	rt.Launch(visibility.TaskSpec{
		Name:     "consumer",
		Accesses: []visibility.Access{visibility.Write(halves.Sub(1), "v")},
		Kernel:   visibility.Kernel{Body: note("consumer")},
		After:    []visibility.Future{f},
	})
	rt.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "producer" || order[1] != "consumer" {
		t.Fatalf("order = %v, want [producer consumer]", order)
	}
}
