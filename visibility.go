// Package visibility is an implicitly parallel task runtime built on the
// visibility-based coherence algorithms of Bauer et al., "Visibility
// Algorithms for Dynamic Dependence Analysis and Distributed Coherence"
// (PPoPP 2023).
//
// Programs create regions (collections of points with named fields),
// partition them — any number of times, with overlapping (aliased)
// subregions permitted — and launch tasks that declare read, read-write,
// or reduction privileges on subregions. The runtime dynamically discovers
// dependences between tasks, executes independent tasks in parallel, and
// materializes for every task exactly the data a sequential execution
// would have produced (content-based coherence).
//
// A minimal program:
//
//	rt := visibility.New(visibility.Config{})
//	nodes := rt.CreateRegion("nodes", visibility.Line(0, 99), "v")
//	p := nodes.PartitionEqual("P", 4)
//	for i := 0; i < 4; i++ {
//	    rt.Launch(visibility.TaskSpec{
//	        Name:     "init",
//	        Accesses: []visibility.Access{visibility.Write(p.Sub(i), "v")},
//	        Kernel: visibility.Kernel{Write: func(_ int, pt visibility.Point, _ float64) float64 {
//	            return float64(pt.C[0])
//	        }},
//	    })
//	}
//	rt.Wait()
//
// The coherence algorithm is selectable (ray casting by default, the
// algorithm in production use by Legion; Warnock's algorithm and the
// painter's algorithm are also provided), and Validate mode cross-checks
// every materialized input against a sequential interpreter.
package visibility

import (
	"fmt"
	"io"
	"runtime"
	"sort"

	"visibility/internal/algo"
	"visibility/internal/autotrace"
	"visibility/internal/core"
	"visibility/internal/data"
	"visibility/internal/deppart"
	"visibility/internal/event"
	"visibility/internal/fault"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/graph"
	"visibility/internal/index"
	"visibility/internal/obs"
	"visibility/internal/obs/recorder"
	"visibility/internal/privilege"
	"visibility/internal/region"
	"visibility/internal/sched"
	"visibility/internal/shard"
	"visibility/internal/trace"
)

// Point is an n-dimensional integer point; coordinates live in C.
type Point = geometry.Point

// Rect is an axis-aligned rectangle with inclusive bounds.
type Rect = geometry.Rect

// IndexSpace is a sparse set of points.
type IndexSpace = index.Space

// Pt returns a 1-D point.
func Pt(x int64) Point { return geometry.Pt1(x) }

// Pt2 returns a 2-D point.
func Pt2(x, y int64) Point { return geometry.Pt2(x, y) }

// Line returns the 1-D index space [lo, hi].
func Line(lo, hi int64) IndexSpace { return index.FromRect(geometry.R1(lo, hi)) }

// Grid returns the 2-D index space [0,w-1] x [0,h-1].
func Grid(w, h int64) IndexSpace { return index.FromRect(geometry.R2(0, 0, w-1, h-1)) }

// Box returns the 2-D index space with the given inclusive bounds.
func Box(lox, loy, hix, hiy int64) IndexSpace {
	return index.FromRect(geometry.R2(lox, loy, hix, hiy))
}

// Union returns the union of index spaces.
func Union(spaces ...IndexSpace) IndexSpace {
	if len(spaces) == 0 {
		return index.Empty(1)
	}
	out := spaces[0]
	for _, s := range spaces[1:] {
		out = out.Union(s)
	}
	return out
}

// Points returns the index space holding exactly the given 1-D
// coordinates.
func Points(xs ...int64) IndexSpace {
	ps := make([]geometry.Point, len(xs))
	for i, x := range xs {
		ps[i] = geometry.Pt1(x)
	}
	return index.FromPoints(1, ps...)
}

// ReduceOp identifies a reduction operator.
type ReduceOp = privilege.ReduceOp

// Reduction operators with identities, usable with Reduce accesses.
const (
	OpSum  = privilege.OpSum
	OpProd = privilege.OpProd
	OpMin  = privilege.OpMin
	OpMax  = privilege.OpMax
)

// Config configures a Runtime. The zero value is valid: ray casting,
// one worker per CPU, no validation.
type Config struct {
	// Algorithm selects the coherence algorithm: "raycast" (default),
	// "warnock", "paint", or "paint-naive".
	Algorithm string
	// Workers is the number of parallel kernel executors (default:
	// GOMAXPROCS).
	Workers int
	// Validate additionally runs every task through a sequential
	// interpreter and panics if a materialized input ever diverges —
	// the runtime's self-checking mode.
	Validate bool
	// Tracing enables dynamic tracing: repetitive sections bracketed with
	// BeginTrace/EndTrace are analyzed once and replayed afterwards,
	// eliminating the per-launch analysis cost of steady-state loops.
	Tracing bool
	// AutoTrace enables automatic trace memoization: the runtime hashes
	// every launch's structure, detects repeating sections of the launch
	// stream online, and brackets them itself — the steady-state benefit
	// of Tracing without BeginTrace/EndTrace calls. Any divergence falls
	// back to direct analysis, so results are identical to an untraced
	// run. Mutually exclusive with Tracing (the explicit brackets would
	// fight the automatic ones).
	AutoTrace bool
	// Shards, when > 1, partitions each launch's dependence analysis
	// across that many parallel shard goroutines (internal/shard): the
	// root index space is cut into per-shard atoms, each analyzed by its
	// own instance of the configured algorithm, and the per-atom results
	// merge back into a byte-identical sequential edge stream. Shards: 1
	// runs the shard layer with a single atom (its overhead baseline);
	// 0 (the default) bypasses the layer entirely. Composes with Tracing
	// and AutoTrace — the tracer wraps the sharded analyzer, so replays
	// skip the fan-out altogether.
	Shards int
	// Metrics, when non-nil, is the registry every component of this
	// runtime publishes into: analyzer operation counters appear under
	// "analyzer/<root-region-name>/", scheduler cache counters under
	// "sched/cache/", tracing outcomes under "trace/". Nil keeps the
	// pre-existing behavior of private per-component registries. The
	// serving layer passes one registry per session so sessions stay
	// observably disjoint.
	Metrics *obs.Registry
	// Spans, when non-nil, receives begin/end records for the phases of
	// each per-launch analysis (and trace record/replay/invalidate
	// events). Nil disables span recording at zero cost.
	Spans *obs.Buffer
	// Recorder, when non-nil, is the flight-recorder ring journaling coarse
	// runtime events: task launches, equivalence-set splits and coalesces,
	// instance-cache outcomes. Nil disables journaling at zero cost.
	Recorder *recorder.Recorder
	// Faults, when non-nil, arms the deterministic fault-injection plane:
	// forced equivalence-set splits and migrations in the analyzer,
	// instance-cache bypasses in the scheduler, and bit-flip corruption on
	// checkpoint encode/restore. Nil (the default) disables every site.
	Faults *fault.Injector
	// Provenance enables dependence provenance capture: every discovered
	// dependence edge carries a compact EdgeReason (which analyzer found
	// it, in which equivalence set, which requirement pair interfered —
	// or the future/trace-replay construct that ordered it), and every
	// launch samples a deterministic virtual cost. Explain, MustPrecede,
	// and CriticalPath serve queries over the captured data. Off (the
	// default), the capture sites cost one pointer test each.
	Provenance bool
}

// Runtime is an implicitly parallel runtime instance. Create regions and
// partitions first, then launch tasks; the first launch freezes the
// initial region contents. A Runtime's methods must be called from a
// single goroutine (task kernels themselves run in parallel).
// A Runtime and everything it creates (regions, partitions, futures,
// snapshots) belong to the goroutine that drives it: the single-goroutine
// rule of dynamic dependence analysis (§3.2). The exported methods are
// the owner's entry points; none of the state below carries a lock.
//
// confined to runtime-owner
type Runtime struct {
	cfg Config
	// confined to runtime-owner
	regions []*Region
	// registered tracks computed-metric prefixes claimed on cfg.Metrics.
	//
	// confined to runtime-owner
	registered map[string]bool
}

// New creates a runtime.
func New(cfg Config) *Runtime {
	if cfg.Algorithm == "" {
		cfg.Algorithm = "raycast"
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if _, err := algo.Lookup(cfg.Algorithm); err != nil {
		panic(fmt.Sprintf("visibility: %v", err))
	}
	if cfg.Tracing && cfg.AutoTrace {
		panic("visibility: Tracing and AutoTrace are mutually exclusive")
	}
	return &Runtime{cfg: cfg, registered: make(map[string]bool)}
}

// Region is a logical region: an index space with named fields, possibly a
// subregion of a partition.
type Region struct {
	rt   *Runtime
	tree *treeState
	reg  *region.Region
}

// Partition is an array of subregions of a region.
type Partition struct {
	r *Region
	p *region.Partition
}

type treeState struct {
	tree   *region.Tree
	fields map[string]field.ID
	init   map[field.ID]*data.Store
	stream *core.Stream
	exec   *sched.Executor
	seq    *core.Seq        // non-nil in Validate mode
	tracer *trace.Tracer    // non-nil in Tracing mode
	auto   *autotrace.Auto  // non-nil in AutoTrace mode
	shard  *shard.Analyzer  // non-nil when Config.Shards > 0
	prov   *core.Provenance // non-nil in Provenance mode
	// labels caches precedence labels for MustPrecede; rebuilt when the
	// stream has grown past labelsAt.
	labels   *graph.Labels
	labelsAt int
	frozen   bool
}

// CreateRegion creates a top-level region over space with the given
// fields. Every field starts zero-filled; use Fill or Init to set initial
// contents before the first launch.
//
// confined to runtime-owner
func (rt *Runtime) CreateRegion(name string, space IndexSpace, fields ...string) *Region {
	if len(fields) == 0 {
		panic("visibility: a region needs at least one field")
	}
	fs := field.NewSpace()
	ts := &treeState{fields: make(map[string]field.ID)}
	for _, f := range fields {
		ts.fields[f] = fs.Add(f)
	}
	ts.tree = region.NewTree(name, space, fs)
	ts.init = make(map[field.ID]*data.Store)
	for _, id := range ts.fields {
		st := data.NewStore(space.Dim())
		space.Each(func(p Point) bool {
			st.Set(p, 0)
			return true
		})
		ts.init[id] = st
	}
	r := &Region{rt: rt, tree: ts, reg: ts.tree.Root}
	rt.regions = append(rt.regions, r)
	return r
}

// Region returns the root region created with the given name, or nil.
//
// confined to runtime-owner
func (rt *Runtime) Region(name string) *Region {
	for _, r := range rt.regions {
		if r.reg.Name == name {
			return r
		}
	}
	return nil
}

// Space returns the region's index space.
func (r *Region) Space() IndexSpace { return r.reg.Space }

// Name returns the region's name.
func (r *Region) Name() string { return r.reg.Name }

// Fields returns the field names of r's tree, sorted.
func (r *Region) Fields() []string {
	names := make([]string, 0, len(r.tree.fields))
	for name := range r.tree.fields {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// HasField reports whether r's tree declares the named field.
func (r *Region) HasField(name string) bool {
	_, ok := r.tree.fields[name]
	return ok
}

// SameTree reports whether r and o belong to the same region tree — the
// precondition Launch enforces across a task's accesses.
func (r *Region) SameTree(o *Region) bool { return o != nil && r.tree == o.tree }

// Fill sets every element of a field of this region's points to v. Only
// valid before the first task launch on the region's tree.
func (r *Region) Fill(fieldName string, v float64) *Region {
	return r.Init(fieldName, func(Point) float64 { return v })
}

// Init sets initial contents of a field from a function of the point.
// Only valid before the first task launch on the region's tree.
func (r *Region) Init(fieldName string, f func(Point) float64) *Region {
	if r.tree.frozen {
		panic("visibility: cannot set initial contents after tasks have launched")
	}
	id := r.fieldID(fieldName)
	st := r.tree.init[id]
	r.reg.Space.Each(func(p Point) bool {
		st.Set(p, f(p))
		return true
	})
	return r
}

func (r *Region) fieldID(name string) field.ID {
	id, ok := r.tree.fields[name]
	if !ok {
		panic(fmt.Sprintf("visibility: region %s has no field %q", r.reg.Name, name))
	}
	return id
}

// Partition creates a partition of r from explicit pieces. Pieces may
// overlap (an aliased partition, e.g. ghost regions) and need not cover r.
func (r *Region) Partition(name string, pieces []IndexSpace) *Partition {
	return &Partition{r: r, p: r.reg.Partition(name, pieces)}
}

// PartitionEqual partitions r into n equal contiguous blocks by row-major
// position — a disjoint, complete partition.
func (r *Region) PartitionEqual(name string, n int) *Partition {
	vol := r.reg.Space.Volume()
	if n <= 0 || int64(n) > vol {
		panic(fmt.Sprintf("visibility: cannot split %d points into %d pieces", vol, n))
	}
	pieces := make([]IndexSpace, n)
	var pts []Point
	i := 0
	r.reg.Space.Each(func(p Point) bool {
		pts = append(pts, p)
		// Piece i takes positions [i*vol/n, (i+1)*vol/n).
		if int64(len(pts)) == (int64(i)+1)*vol/int64(n)-int64(i)*vol/int64(n) {
			pieces[i] = index.FromPoints(r.reg.Space.Dim(), pts...)
			pts = nil
			i++
		}
		return true
	})
	return r.Partition(name, pieces)
}

// PartitionImage computes a dependent partition (Treichler et al.,
// OOPSLA'16): piece i of the result holds the points of r that piece i of
// src maps to under rel. This is how ghost partitions are derived from
// connectivity — e.g. the image of each graph piece under the
// edge-neighbor relation, minus the piece itself.
func (r *Region) PartitionImage(name string, src *Partition, rel func(Point) []Point) *Partition {
	pieces := make([]IndexSpace, src.Len())
	for i := range pieces {
		pieces[i] = src.p.Subregions[i].Space
	}
	img := deppart.Image(pieces, deppart.Relation(rel), r.reg.Space, r.reg.Space.Dim())
	return r.Partition(name, img)
}

// PartitionPreimage computes the dependent partition whose piece i holds
// the points of r whose image under rel intersects piece i of dst.
func (r *Region) PartitionPreimage(name string, dst *Partition, rel func(Point) []Point) *Partition {
	targets := make([]IndexSpace, dst.Len())
	for i := range targets {
		targets[i] = dst.p.Subregions[i].Space
	}
	pre := deppart.Preimage(r.reg.Space, deppart.Relation(rel), targets, r.reg.Space.Dim())
	return r.Partition(name, pre)
}

// PartitionByColor partitions r into n pieces by a coloring function;
// points colored outside [0,n) belong to no piece.
func (r *Region) PartitionByColor(name string, n int, color func(Point) int) *Partition {
	return r.Partition(name, deppart.ByColor(r.reg.Space, n, color))
}

// Minus returns a new partition of the same parent whose piece i is
// p's piece i minus o's piece i (pairwise difference; p and o must have
// the same length).
func (p *Partition) Minus(name string, o *Partition) *Partition {
	if p.Len() != o.Len() {
		panic("visibility: Minus requires partitions of equal length")
	}
	a := make([]IndexSpace, p.Len())
	b := make([]IndexSpace, o.Len())
	for i := range a {
		a[i] = p.p.Subregions[i].Space
		b[i] = o.p.Subregions[i].Space
	}
	return p.r.Partition(name, deppart.Difference(a, b))
}

// Sub returns the i-th subregion.
func (p *Partition) Sub(i int) *Region {
	return &Region{rt: p.r.rt, tree: p.r.tree, reg: p.p.Subregions[i]}
}

// Len returns the number of subregions.
func (p *Partition) Len() int { return len(p.p.Subregions) }

// Disjoint reports whether no two subregions share a point.
func (p *Partition) Disjoint() bool { return p.p.Disjoint }

// Complete reports whether the subregions cover the parent region.
func (p *Partition) Complete() bool { return p.p.Complete }

// Access declares how a task touches one region's field.
type Access struct {
	Region *Region
	Field  string
	priv   privilege.Privilege
}

// Read declares read-only access.
func Read(r *Region, field string) Access {
	return Access{Region: r, Field: field, priv: privilege.Reads()}
}

// Write declares read-write access.
func Write(r *Region, field string) Access {
	return Access{Region: r, Field: field, priv: privilege.Writes()}
}

// Reduce declares reduction access with operator op.
func Reduce(op ReduceOp, r *Region, field string) Access {
	return Access{Region: r, Field: field, priv: privilege.Reduces(op)}
}

// Kernel is the computation a task performs, as pure per-point functions.
//
// Write is called for every point of each Write access with the current
// value and returns the new value. Reduce is called for every point of
// each Reduce access and returns the task's contribution (folded with the
// access's operator). Read accesses are materialized and passed to Body.
// Nil members are treated as identity (Write keeps the input, Reduce
// contributes the operator identity).
type Kernel struct {
	Write  func(access int, p Point, in float64) float64
	Reduce func(access int, p Point) float64
	// Body, if non-nil, runs once per task execution with the
	// materialized inputs of every Read and Write access (indexed by
	// access position; Reduce accesses have nil inputs).
	Body func(inputs []*Snapshot)
}

// Snapshot is a read-only view of materialized region contents.
type Snapshot struct{ st *data.Store }

// Get returns the value at p; ok reports whether p is defined.
func (s *Snapshot) Get(p Point) (float64, bool) {
	if s == nil || s.st == nil {
		return 0, false
	}
	return s.st.Get(p)
}

// Len returns the number of defined points.
func (s *Snapshot) Len() int {
	if s == nil || s.st == nil {
		return 0
	}
	return s.st.Len()
}

// Each visits every defined point in deterministic order.
func (s *Snapshot) Each(f func(Point, float64)) {
	if s == nil || s.st == nil {
		return
	}
	s.st.Each(f)
}

// TaskSpec describes one task launch.
type TaskSpec struct {
	Name     string
	Accesses []Access
	Kernel   Kernel
	// After lists futures of earlier tasks this task must wait for —
	// scalar-result (ordering) dependences that carry no region data,
	// like Legion futures.
	After []Future
}

// Future is a task completion handle and, when passed in TaskSpec.After,
// an explicit ordering dependence.
type Future struct {
	ev     *event.Event
	taskID int
}

// Wait blocks until the task has executed.
func (f Future) Wait() { f.ev.Wait() }

// Done reports whether the task has executed.
func (f Future) Done() bool { return f.ev.HasTriggered() }

// Launch submits a task. The dependence analysis observes launches in call
// order (program order); execution is parallel, constrained only by
// discovered dependences. Launch returns immediately.
//
// confined to runtime-owner
func (rt *Runtime) Launch(spec TaskSpec) Future {
	if len(spec.Accesses) == 0 {
		panic("visibility: task needs at least one access")
	}
	ts := spec.Accesses[0].Region.tree
	rt.freeze(ts)

	reqs := make([]core.Req, len(spec.Accesses))
	for i, a := range spec.Accesses {
		if a.Region.tree != ts {
			panic("visibility: all accesses of one task must target the same region tree")
		}
		reqs[i] = core.Req{Region: a.Region.reg, Field: a.Region.fieldID(a.Field), Priv: a.priv}
	}
	t := ts.stream.Launch(spec.Name, reqs...)
	for _, f := range spec.After {
		t.FutureDeps = append(t.FutureDeps, f.taskID)
		if ts.prov != nil {
			// Future edges are ordering-only: no analyzer, no region pair.
			// Captured before Submit, so an analyzer later re-finding the
			// same producer through region data does not displace this.
			ts.prov.AddReason(core.EdgeReason{
				Src: f.taskID, Dst: t.ID, Kind: core.ReasonFuture, Trace: -1,
			})
		}
	}

	k := &kernelAdapter{spec: spec}

	// In Validate mode, replay through the sequential interpreter first
	// (on the launching goroutine, in program order) and capture the
	// expected inputs; the parallel execution checks against that private
	// copy, so no shared interpreter state is touched from workers.
	var want []*data.Store
	if ts.seq != nil {
		var seqBody func([]*data.Store)
		if spec.Kernel.Body != nil {
			seqBody = func(inputs []*data.Store) { spec.Kernel.Body(snapshots(inputs)) }
		}
		ts.seq.RunBody(t, k, seqBody)
		want = ts.seq.Inputs[t.ID]
	}

	var body func([]*data.Store)
	if spec.Kernel.Body != nil || want != nil {
		body = func(inputs []*data.Store) {
			if want != nil {
				validate(t, want, inputs)
			}
			if spec.Kernel.Body != nil {
				spec.Kernel.Body(snapshots(inputs))
			}
		}
	}
	return Future{ev: ts.exec.Submit(t, k, body), taskID: t.ID}
}

func snapshots(inputs []*data.Store) []*Snapshot {
	snaps := make([]*Snapshot, len(inputs))
	for i, st := range inputs {
		if st != nil {
			snaps[i] = &Snapshot{st: st}
		}
	}
	return snaps
}

func validate(t *core.Task, want, got []*data.Store) {
	for ri, req := range t.Reqs {
		if req.Priv.IsReduce() {
			continue
		}
		if !want[ri].Equal(got[ri]) {
			panic(fmt.Sprintf("visibility: validation failed for %v access %d:\n%s",
				t, ri, want[ri].Diff(got[ri])))
		}
	}
}

// freeze builds the executor on first launch.
func (rt *Runtime) freeze(ts *treeState) {
	if ts.frozen {
		return
	}
	ts.frozen = true
	if rt.cfg.Provenance {
		ts.prov = core.NewProvenance()
	}
	opts := core.Options{Metrics: rt.cfg.Metrics, Spans: rt.cfg.Spans, Recorder: rt.cfg.Recorder, Faults: rt.cfg.Faults, Prov: ts.prov}
	newAn, _ := algo.Lookup(rt.cfg.Algorithm)
	var an core.Analyzer
	if rt.cfg.Shards > 0 {
		ts.shard = shard.New(ts.tree, opts, rt.cfg.Shards, shard.Factory(newAn))
		an = ts.shard
	} else {
		an = newAn(ts.tree, opts)
	}
	if rt.cfg.Metrics != nil {
		// Computed metrics are read live at snapshot time; per-tree
		// prefixes keep multi-tree runtimes from colliding. A second root
		// with the same name would collide, so it keeps its counters
		// private rather than panicking mid-launch.
		name := "analyzer/" + ts.tree.Root.Name
		if !rt.registered[name] {
			rt.registered[name] = true
			an.Stats().RegisterMetrics(rt.cfg.Metrics, name)
		}
	}
	if rt.cfg.Tracing {
		ts.tracer = trace.New(an, opts)
		an = ts.tracer
	}
	if rt.cfg.AutoTrace {
		ts.auto = autotrace.New(an, opts)
		an = ts.auto
	}
	ts.stream = core.NewStream(ts.tree)
	ts.exec = sched.NewExecutorProv(ts.tree, an, ts.init, rt.cfg.Workers, rt.cfg.Metrics, rt.cfg.Recorder, rt.cfg.Faults, ts.prov)
	if rt.cfg.Validate {
		ts.seq = core.NewSeq(ts.tree, ts.init)
	}
}

// BeginTrace starts a trace instance with the given id on the tree
// containing r; requires Config.Tracing. The launches up to the matching
// EndTrace form the trace: its first instance records, and later
// contiguous, structurally identical instances replay without analysis.
//
// confined to runtime-owner
func (rt *Runtime) BeginTrace(r *Region, id int) {
	rt.freeze(r.tree)
	if r.tree.tracer == nil {
		panic("visibility: BeginTrace requires Config.Tracing")
	}
	r.tree.tracer.Begin(id)
}

// EndTrace finishes the current trace instance on r's tree.
//
// confined to runtime-owner
func (rt *Runtime) EndTrace(r *Region) {
	if r.tree.tracer == nil {
		panic("visibility: EndTrace requires Config.Tracing")
	}
	r.tree.tracer.End()
}

// TraceStats returns tracing counters for r's tree (zero when tracing is
// disabled or nothing has launched). With AutoTrace, these are the
// automatic tracer's counters.
//
// confined to runtime-owner
func (rt *Runtime) TraceStats(r *Region) trace.Stats {
	if r.tree.auto != nil {
		return r.tree.auto.AutoStats().Trace
	}
	if r.tree.tracer == nil {
		return trace.Stats{}
	}
	return r.tree.tracer.TraceStats()
}

// AutoTraceStats returns the automatic tracer's outcome counters for r's
// tree (zero when Config.AutoTrace is off or nothing has launched).
//
// confined to runtime-owner
func (rt *Runtime) AutoTraceStats(r *Region) autotrace.Stats {
	if r.tree.auto == nil {
		return autotrace.Stats{}
	}
	return r.tree.auto.AutoStats()
}

// kernelAdapter adapts the public Kernel to the internal core.Kernel.
type kernelAdapter struct{ spec TaskSpec }

func (k *kernelAdapter) WriteValue(_ *core.Task, ri int, p Point, in float64) float64 {
	if k.spec.Kernel.Write == nil {
		return in
	}
	return k.spec.Kernel.Write(ri, p, in)
}

func (k *kernelAdapter) ReduceValue(t *core.Task, ri int, p Point) float64 {
	if k.spec.Kernel.Reduce == nil {
		op := t.Reqs[ri].Priv.Op
		return privilege.Identity(op)
	}
	return k.spec.Kernel.Reduce(ri, p)
}

// Read materializes the current contents of a region's field through the
// coherence algorithm, waiting for every contributing task. It is itself a
// task launch (an inline mapping) and participates in dependence analysis.
//
// confined to runtime-owner
func (rt *Runtime) Read(r *Region, fieldName string) *Snapshot {
	ts := r.tree
	rt.freeze(ts)
	if ts.seq != nil {
		// Keep the validator in lockstep with the launched read.
		t := ts.stream.Launch("inline-read",
			core.Req{Region: r.reg, Field: r.fieldID(fieldName), Priv: privilege.Reads()})
		k := &kernelAdapter{}
		ts.seq.Run(t, k)
		want := ts.seq.Inputs[t.ID]
		var got *data.Store
		done := ts.exec.Submit(t, k, func(inputs []*data.Store) { got = inputs[0] })
		done.Wait()
		validate(t, want, []*data.Store{got})
		return &Snapshot{st: got}
	}
	return &Snapshot{st: ts.exec.Read(ts.stream, r.reg, r.fieldID(fieldName))}
}

// Wait blocks until every launched task has completed.
//
// confined to runtime-owner
func (rt *Runtime) Wait() {
	for _, r := range rt.regions {
		if r.tree.exec != nil {
			r.tree.exec.Drain()
		}
	}
}

// Close waits for completion and releases worker resources. The runtime
// cannot be used afterwards.
//
// confined to runtime-owner
func (rt *Runtime) Close() {
	for _, r := range rt.regions {
		if r.tree.exec != nil {
			r.tree.exec.Shutdown()
			r.tree.exec = nil
		}
		if r.tree.shard != nil {
			r.tree.shard.Close()
			r.tree.shard = nil
		}
	}
}

// Stats returns the coherence analyzer's operation counters for the tree
// containing r.
//
// confined to runtime-owner
func (rt *Runtime) Stats(r *Region) core.Stats {
	if r.tree.exec == nil {
		return core.Stats{}
	}
	return *r.tree.exec.Analyzer().Stats()
}

// TaskInfo describes one analyzed task launch: its dense ID, name, and the
// direct predecessors the dynamic analysis discovered (analyzer-reported
// region dependences merged with explicit future edges, deduplicated and
// ascending).
type TaskInfo struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	Deps []int  `json:"deps"`
}

// Dependences returns the dependence graph discovered so far for the tree
// containing r, one entry per launch in program order. It must be called
// from the launching goroutine, like every other Runtime method; nil when
// nothing has launched.
//
// confined to runtime-owner
func (rt *Runtime) Dependences(r *Region) []TaskInfo {
	ts := r.tree
	if ts.exec == nil {
		return nil
	}
	deps := ts.exec.Deps()
	out := make([]TaskInfo, 0, len(ts.stream.Tasks))
	for _, t := range ts.stream.Tasks {
		merged := append(append([]int{}, deps[t.ID]...), t.FutureDeps...)
		out = append(out, TaskInfo{ID: t.ID, Name: t.Name, Deps: core.DedupDeps(merged)})
	}
	return out
}

// WriteDOT renders the discovered dependence graph of the tree containing
// r in Graphviz format.
//
// confined to runtime-owner
func (rt *Runtime) WriteDOT(r *Region, w io.Writer) error {
	ts := r.tree
	if ts.exec == nil {
		return graph.FromStream(nil, nil).WriteDOT(w)
	}
	return graph.FromStream(ts.stream.Tasks, ts.exec.Deps()).WriteDOT(w)
}
