// Pennant-style mini-hydro: a 1-D Lagrangian step chain exercising the
// patterns of the PENNANT benchmark (§8) through the public API — zone
// pressure updates, point forces gathered with sum-reductions through an
// aliased ghost partition, and a global timestep computed each cycle with
// min-reductions onto a single control element then read back by every
// piece (an implicit all-reduce the runtime discovers and orders by
// itself).
package main

import (
	"fmt"
	"log"
	"math"

	"visibility"
)

const (
	pieces     = 4
	zonesPer   = 8
	pointsPer  = 9 // one more point than zones per piece (shared junctions)
	cycles     = 5
	totalZones = pieces * zonesPer
)

func main() {
	rt := visibility.New(visibility.Config{Algorithm: "raycast", Validate: true})
	defer rt.Close()

	// Layout: zones [0, totalZones), points after them, control element
	// last (for the global dt).
	totalPoints := int64(pieces*pointsPer - (pieces - 1)) // junctions shared
	pointsBase := int64(totalZones)
	ctrl := pointsBase + totalPoints
	mesh := rt.CreateRegion("mesh", visibility.Line(0, ctrl), "zp", "pf", "dt")
	mesh.Init("zp", func(p visibility.Point) float64 {
		if p.C[0] < totalZones {
			return 1 + float64(p.C[0])/10 // initial pressures
		}
		return 0
	})
	mesh.Fill("pf", 0)
	mesh.Fill("dt", 1)

	zonePieces := make([]visibility.IndexSpace, pieces)
	pointPieces := make([]visibility.IndexSpace, pieces)
	ghostPieces := make([]visibility.IndexSpace, pieces)
	for i := 0; i < pieces; i++ {
		zonePieces[i] = visibility.Line(int64(i*zonesPer), int64((i+1)*zonesPer-1))
		// Points: piece i owns junctions [i*(pointsPer-1), (i+1)*(pointsPer-1)],
		// sharing junction points with neighbors via ghosts.
		lo := pointsBase + int64(i*(pointsPer-1))
		hi := lo + int64(pointsPer-1)
		if i < pieces-1 {
			hi-- // the shared junction is owned by the right neighbor
		}
		pointPieces[i] = visibility.Line(lo, hi)
		var ghost []int64
		if i > 0 {
			ghost = append(ghost, lo-1, lo) // left junction and own first (aliased)
		}
		if i < pieces-1 {
			ghost = append(ghost, hi+1)
		}
		ghostPieces[i] = visibility.Points(ghost...)
	}
	zones := mesh.Partition("Z", zonePieces)
	points := mesh.Partition("PT", pointPieces)
	ghosts := mesh.Partition("G", ghostPieces)
	dtP := mesh.Partition("DT", []visibility.IndexSpace{visibility.Points(ctrl)})
	dtReg := dtP.Sub(0)
	fmt.Printf("zones: %v; points: %v; ghosts aliased: %v\n",
		zones.Complete(), points.Disjoint(), !ghosts.Disjoint())

	for c := 0; c < cycles; c++ {
		// Phase 1: zone pressures decay by the current global dt; each
		// piece reads dt (all depend on last cycle's finalize).
		for i := 0; i < pieces; i++ {
			var dt float64
			rt.Launch(visibility.TaskSpec{
				Name: "eos",
				Accesses: []visibility.Access{
					visibility.Read(dtReg, "dt"),
					visibility.Write(zones.Sub(i), "zp"),
				},
				Kernel: visibility.Kernel{
					Body: func(in []*visibility.Snapshot) {
						dt, _ = in[0].Get(visibility.Pt(ctrl))
					},
					Write: func(_ int, p visibility.Point, zp float64) float64 {
						return zp * (1 - 0.1*dt)
					},
				},
			})
		}
		// Phase 2: gather forces to owned and ghost points (sum
		// reductions meeting at shared junctions).
		for i := 0; i < pieces; i++ {
			rt.Launch(visibility.TaskSpec{
				Name: "forces",
				Accesses: []visibility.Access{
					visibility.Read(zones.Sub(i), "zp"),
					visibility.Reduce(visibility.OpSum, points.Sub(i), "pf"),
					visibility.Reduce(visibility.OpSum, ghosts.Sub(i), "pf"),
				},
				Kernel: visibility.Kernel{
					Reduce: func(_ int, p visibility.Point) float64 { return 0.5 },
				},
			})
		}
		// Phase 3: each piece proposes a timestep; min-reduce to the
		// control element.
		for i := 0; i < pieces; i++ {
			i := i
			rt.Launch(visibility.TaskSpec{
				Name: "calc_dt",
				Accesses: []visibility.Access{
					visibility.Reduce(visibility.OpMin, dtReg, "dt"),
				},
				Kernel: visibility.Kernel{
					Reduce: func(_ int, _ visibility.Point) float64 {
						return 0.5 + 0.1*float64(i) // piece 0 is the bottleneck
					},
				},
			})
		}
		// Phase 4: finalize dt (folds the min-reductions over the old
		// value and rescales) — the 1-task gather point of the all-reduce.
		rt.Launch(visibility.TaskSpec{
			Name:     "finalize_dt",
			Accesses: []visibility.Access{visibility.Write(dtReg, "dt")},
			Kernel: visibility.Kernel{
				Write: func(_ int, _ visibility.Point, folded float64) float64 {
					return folded * 1.02 // grow dt slightly each cycle
				},
			},
		})
	}

	dtSnap := rt.Read(dtReg, "dt")
	dt, _ := dtSnap.Get(visibility.Pt(ctrl))
	// Reference: dt starts at 1; each cycle dt = min(dt, 0.5)*1.02.
	want := 1.0
	for c := 0; c < cycles; c++ {
		want = math.Min(want, 0.5) * 1.02
	}
	if math.Abs(dt-want) > 1e-12 {
		log.Fatalf("dt = %v, want %v", dt, want)
	}

	pf := rt.Read(mesh, "pf")
	// The first junction point receives three contributions per cycle:
	// its owner (piece 1), piece 0's ghost, and piece 1's own aliased
	// ghost entry.
	shared := pointsBase + int64(pointsPer-1)
	v, _ := pf.Get(visibility.Pt(shared))
	if want := float64(cycles) * 1.5; v != want {
		log.Fatalf("shared junction force = %v, want %v", v, want)
	}
	fmt.Printf("%d cycles: global dt = %.6f ✓, shared-junction force = %v ✓\n", cycles, dt, v)
	st := rt.Stats(mesh)
	fmt.Printf("launches=%d deps=%d (the all-reduce orderings were discovered, not programmed)\n",
		st.Launches, st.DepsReported)
}
