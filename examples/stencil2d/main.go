// Stencil2d runs a 2-D Jacobi heat-diffusion stencil on a grid partitioned
// into blocks with aliased halo regions, using the public API with real
// values, and verifies the result against a serial solver. The structure
// mirrors the paper's Stencil benchmark (§8): a disjoint primary partition
// for the blocks, an aliased ghost partition for the halos, and two fields
// (t0, t1) ping-ponged between iterations.
package main

import (
	"fmt"
	"log"
	"math"

	"visibility"
)

const (
	width, height = 24, 16
	bx, by        = 2, 2 // grid of pieces
	steps         = 8
)

func blockOf(i int) (int64, int64, int64, int64) {
	cx, cy := int64(i%bx), int64(i/bx)
	w, h := int64(width/bx), int64(height/by)
	return cx * w, cy * h, (cx+1)*w - 1, (cy+1)*h - 1
}

// haloOf returns the width-1 halo around block i, clipped to the grid.
func haloOf(i int) visibility.IndexSpace {
	lox, loy, hix, hiy := blockOf(i)
	full := visibility.Box(lox-1, loy-1, hix+1, hiy+1)
	grid := visibility.Grid(width, height)
	block := visibility.Box(lox, loy, hix, hiy)
	return full.Intersect(grid).Subtract(block)
}

func main() {
	rt := visibility.New(visibility.Config{Algorithm: "raycast", Validate: true})
	defer rt.Close()

	grid := rt.CreateRegion("grid", visibility.Grid(width, height), "t0", "t1")
	hot := func(p visibility.Point) float64 {
		if p.C[0] == 0 {
			return 100 // hot west wall
		}
		return 0
	}
	grid.Init("t0", hot)
	grid.Init("t1", hot)

	pieces := make([]visibility.IndexSpace, bx*by)
	halos := make([]visibility.IndexSpace, bx*by)
	for i := range pieces {
		lox, loy, hix, hiy := blockOf(i)
		pieces[i] = visibility.Box(lox, loy, hix, hiy)
		halos[i] = haloOf(i)
	}
	blocks := grid.Partition("P", pieces)
	ghosts := grid.Partition("G", halos)

	// One Jacobi sweep: read the source field on the block and its halo,
	// write the destination field on the block. Boundary cells keep their
	// values (fixed temperature walls).
	sweep := func(i int, src, dst string) {
		// merged is per-launch state: Body runs before the Write calls of
		// the same task on the same goroutine, and every launch gets its
		// own closure, so concurrent tasks on disjoint blocks don't share
		// it.
		var merged map[visibility.Point]float64
		rt.Launch(visibility.TaskSpec{
			Name: fmt.Sprintf("sweep[%d]", i),
			Accesses: []visibility.Access{
				visibility.Read(blocks.Sub(i), src),
				visibility.Read(ghosts.Sub(i), src),
				visibility.Write(blocks.Sub(i), dst),
			},
			Kernel: visibility.Kernel{
				Body: func(inputs []*visibility.Snapshot) {
					// Merge the block and halo views of the source field.
					merged = make(map[visibility.Point]float64)
					inputs[0].Each(func(p visibility.Point, v float64) { merged[p] = v })
					inputs[1].Each(func(p visibility.Point, v float64) { merged[p] = v })
				},
				Write: func(_ int, p visibility.Point, in float64) float64 {
					x, y := p.C[0], p.C[1]
					if x == 0 || x == width-1 || y == 0 || y == height-1 {
						return merged[p] // fixed boundary
					}
					c := merged[p]
					n := merged[visibility.Pt2(x, y-1)]
					s := merged[visibility.Pt2(x, y+1)]
					w := merged[visibility.Pt2(x-1, y)]
					e := merged[visibility.Pt2(x+1, y)]
					return c + 0.2*(n+s+e+w-4*c)
				},
			},
		})
	}

	src, dst := "t0", "t1"
	for s := 0; s < steps; s++ {
		for i := 0; i < bx*by; i++ {
			sweep(i, src, dst)
		}
		src, dst = dst, src
	}
	final := rt.Read(grid, src)

	// Serial reference.
	ref := make([][]float64, height)
	for y := range ref {
		ref[y] = make([]float64, width)
		ref[y][0] = 100
	}
	for s := 0; s < steps; s++ {
		next := make([][]float64, height)
		for y := range next {
			next[y] = append([]float64(nil), ref[y]...)
		}
		for y := 1; y < height-1; y++ {
			for x := 1; x < width-1; x++ {
				c := ref[y][x]
				next[y][x] = c + 0.2*(ref[y-1][x]+ref[y+1][x]+ref[y][x-1]+ref[y][x+1]-4*c)
			}
		}
		ref = next
	}

	var maxErr float64
	for y := int64(0); y < height; y++ {
		for x := int64(0); x < width; x++ {
			got, _ := final.Get(visibility.Pt2(x, y))
			if e := math.Abs(got - ref[y][x]); e > maxErr {
				maxErr = e
			}
		}
	}
	if maxErr > 1e-9 {
		log.Fatalf("max error vs serial solver: %v", maxErr)
	}
	center, _ := final.Get(visibility.Pt2(2, height/2))
	fmt.Printf("%d Jacobi steps on %dx%d grid over %d pieces: matches serial solver ✓\n",
		steps, width, height, bx*by)
	fmt.Printf("temperature near hot wall after diffusion: %.3f\n", center)
}
