// Longrun demonstrates the production features around the coherence core:
// a traced simulation loop (the dependence analysis records once and
// replays), a mid-run checkpoint to JSON, restoration into a brand-new
// runtime, and continuation — with the final state verified against an
// uninterrupted run.
package main

import (
	"bytes"
	"fmt"
	"log"

	"visibility"
)

const (
	cells  = 64
	pieces = 4
	steps  = 12
	cut    = 7 // checkpoint after this many steps
)

// step runs one diffusion-flavored iteration: each block decays toward
// zero and its boundary leaks into the neighbor via a reduction.
func step(rt *visibility.Runtime, r *visibility.Region, blocks *visibility.Partition) {
	for i := 0; i < pieces; i++ {
		rt.Launch(visibility.TaskSpec{
			Name:     fmt.Sprintf("decay[%d]", i),
			Accesses: []visibility.Access{visibility.Write(blocks.Sub(i), "heat")},
			Kernel: visibility.Kernel{Write: func(_ int, _ visibility.Point, in float64) float64 {
				return in * 0.9
			}},
		})
	}
	for i := 0; i < pieces; i++ {
		next := blocks.Sub((i + 1) % pieces)
		rt.Launch(visibility.TaskSpec{
			Name:     fmt.Sprintf("leak[%d]", i),
			Accesses: []visibility.Access{visibility.Reduce(visibility.OpSum, next, "heat")},
			Kernel:   visibility.Kernel{Reduce: func(_ int, _ visibility.Point) float64 { return 0.125 }},
		})
	}
}

func run(total int, resumeFrom *bytes.Buffer, traced bool) *visibility.Runtime {
	var rt *visibility.Runtime
	var heat *visibility.Region
	var blocks *visibility.Partition
	cfg := visibility.Config{Tracing: traced, Validate: true}
	if resumeFrom != nil {
		var roots map[string]*visibility.Region
		var err error
		rt, roots, err = visibility.Restore(resumeFrom, cfg)
		if err != nil {
			log.Fatal(err)
		}
		heat = roots["heat"]
		blocks = heat.Partitions()[0]
	} else {
		rt = visibility.New(cfg)
		heat = rt.CreateRegion("heat", visibility.Line(0, cells-1), "heat")
		heat.Init("heat", func(p visibility.Point) float64 { return 100 + float64(p.C[0]) })
		blocks = heat.PartitionEqual("blocks", pieces)
	}
	for s := 0; s < total; s++ {
		if traced {
			rt.BeginTrace(heat, 1)
		}
		step(rt, heat, blocks)
		if traced {
			rt.EndTrace(heat)
		}
	}
	rt.Wait()
	return rt
}

func main() {
	// Uninterrupted reference run, untraced.
	ref := run(steps, nil, false)
	defer ref.Close()

	// Traced run that checkpoints midway and resumes in a new runtime.
	first := run(cut, nil, true)
	var ckpt bytes.Buffer
	if err := first.Checkpoint(&ckpt); err != nil {
		log.Fatal(err)
	}
	size := ckpt.Len()
	st := first.TraceStats(first.Region("heat"))
	first.Close()

	resumed := run(steps-cut, &ckpt, true)
	defer resumed.Close()

	// Compare final states.
	want := ref.Read(ref.Region("heat"), "heat")
	got := resumed.Read(resumed.Region("heat"), "heat")
	var maxErr float64
	want.Each(func(p visibility.Point, w float64) {
		g, _ := got.Get(p)
		if d := w - g; d > maxErr || -d > maxErr {
			if d < 0 {
				d = -d
			}
			maxErr = d
		}
	})
	if maxErr > 1e-9 {
		log.Fatalf("resumed run diverged: max error %v", maxErr)
	}
	fmt.Printf("checkpoint at step %d (%d bytes JSON), resumed to step %d: matches uninterrupted run ✓\n",
		cut, size, steps)
	fmt.Printf("first segment tracing: recorded=%d replayed=%d\n", st.Recorded, st.Replayed)
}
