// Graphsim is the paper's running example (Figure 1): a simulation on an
// undirected graph whose nodes carry up and down fields. Each piece of the
// graph is updated through the primary partition while information flows
// between pieces through an aliased ghost partition with sum-reductions —
// the pattern name-based systems cannot express without giving up implicit
// communication.
//
// The program alternates t1 (read-write up on the piece, reduce+ down on
// the ghosts) and t2 (the mirror image) and checks the result against a
// straightforward sequential simulation of the same graph.
package main

import (
	"fmt"
	"log"
	"math"

	"visibility"
)

const (
	pieces        = 3
	nodesPerPiece = 6
	iterations    = 10
	total         = pieces * nodesPerPiece
)

// ghostOf returns piece i's ghost nodes: the width-4 halo on the ring.
func ghostOf(i int) visibility.IndexSpace {
	lo := int64(i * nodesPerPiece)
	hi := lo + nodesPerPiece - 1
	wrap := func(x int64) int64 { return (x + total) % total }
	var xs []int64
	for d := int64(1); d <= 4; d++ {
		xs = append(xs, wrap(lo-d), wrap(hi+d))
	}
	return visibility.Points(xs...)
}

func main() {
	rt := visibility.New(visibility.Config{Algorithm: "raycast", Validate: true})
	defer rt.Close()

	graph := rt.CreateRegion("N", visibility.Line(0, total-1), "up", "down")
	graph.Init("up", func(p visibility.Point) float64 { return float64(p.C[0]) })
	graph.Init("down", func(p visibility.Point) float64 { return 0 })

	primary := graph.PartitionEqual("P", pieces)
	// Derive the ghost partition with dependent partitioning, as Legion
	// applications do: the image of each piece under the edge-neighbor
	// relation, minus the piece itself.
	neighbors := func(p visibility.Point) []visibility.Point {
		var out []visibility.Point
		for d := int64(1); d <= 4; d++ {
			out = append(out,
				visibility.Pt((p.C[0]-d+total)%total),
				visibility.Pt((p.C[0]+d)%total))
		}
		return out
	}
	ghost := graph.PartitionImage("reach", primary, neighbors).Minus("G", primary)
	fmt.Printf("P: disjoint=%v complete=%v; G: disjoint=%v (aliased ghost halos)\n",
		primary.Disjoint(), primary.Complete(), ghost.Disjoint())
	// The derived ghosts equal the hand-written halos.
	for i := 0; i < pieces; i++ {
		if !ghost.Sub(i).Space().Equal(ghostOf(i)) {
			log.Fatalf("derived ghost %d = %v, want %v", i, ghost.Sub(i).Space(), ghostOf(i))
		}
	}

	// The Figure 1 main loop. t1: each node's up value decays toward the
	// piece-local mean while its influence is pushed to neighbor pieces'
	// down fields; t2 mirrors the roles.
	t1 := func(i int) {
		rt.Launch(visibility.TaskSpec{
			Name: "t1",
			Accesses: []visibility.Access{
				visibility.Write(primary.Sub(i), "up"),
				visibility.Reduce(visibility.OpSum, ghost.Sub(i), "down"),
			},
			Kernel: visibility.Kernel{
				Write:  func(_ int, p visibility.Point, in float64) float64 { return in*0.5 + 1 },
				Reduce: func(_ int, p visibility.Point) float64 { return 0.25 },
			},
		})
	}
	t2 := func(i int) {
		rt.Launch(visibility.TaskSpec{
			Name: "t2",
			Accesses: []visibility.Access{
				visibility.Write(primary.Sub(i), "down"),
				visibility.Reduce(visibility.OpSum, ghost.Sub(i), "up"),
			},
			Kernel: visibility.Kernel{
				Write:  func(_ int, p visibility.Point, in float64) float64 { return in * 0.5 },
				Reduce: func(_ int, p visibility.Point) float64 { return 0.125 },
			},
		})
	}
	for iter := 0; iter < iterations; iter++ {
		for i := 0; i < pieces; i++ {
			t1(i)
		}
		for i := 0; i < pieces; i++ {
			t2(i)
		}
	}

	up := rt.Read(graph, "up")
	down := rt.Read(graph, "down")

	// Reference: plain sequential arrays.
	refUp := make([]float64, total)
	refDown := make([]float64, total)
	for i := range refUp {
		refUp[i] = float64(i)
	}
	inGhost := func(i int, x int64) bool {
		var found bool
		ghostOf(i).Each(func(p visibility.Point) bool {
			if p.C[0] == x {
				found = true
				return false
			}
			return true
		})
		return found
	}
	for iter := 0; iter < iterations; iter++ {
		for i := 0; i < pieces; i++ {
			for x := int64(i * nodesPerPiece); x < int64((i+1)*nodesPerPiece); x++ {
				refUp[x] = refUp[x]*0.5 + 1
			}
			for x := int64(0); x < total; x++ {
				if inGhost(i, x) {
					refDown[x] += 0.25
				}
			}
		}
		for i := 0; i < pieces; i++ {
			for x := int64(i * nodesPerPiece); x < int64((i+1)*nodesPerPiece); x++ {
				refDown[x] *= 0.5
			}
			for x := int64(0); x < total; x++ {
				if inGhost(i, x) {
					refUp[x] += 0.125
				}
			}
		}
	}

	for x := int64(0); x < total; x++ {
		u, _ := up.Get(visibility.Pt(x))
		d, _ := down.Get(visibility.Pt(x))
		if math.Abs(u-refUp[x]) > 1e-9 || math.Abs(d-refDown[x]) > 1e-9 {
			log.Fatalf("node %d: got (%v, %v), want (%v, %v)", x, u, d, refUp[x], refDown[x])
		}
	}
	stats := rt.Stats(graph)
	fmt.Printf("%d iterations over %d nodes verified against sequential reference ✓\n", iterations, total)
	fmt.Printf("launches=%d, equivalence-set ops: created=%d coalesced=%d\n",
		stats.Launches, stats.SetsCreated, stats.SetsCoalesced)
}
