// Quickstart: a minimal implicitly-parallel program against the public
// API. Four tasks initialize disjoint blocks of a 1-D region in parallel,
// a fifth task sums contributions into an overlapping window with a
// reduction, and a final read observes coherent values — the runtime
// discovers all dependences automatically.
package main

import (
	"fmt"
	"log"

	"visibility"
)

func main() {
	rt := visibility.New(visibility.Config{Algorithm: "raycast", Validate: true})
	defer rt.Close()

	// A region of 100 elements with one field, partitioned into 4 blocks.
	cells := rt.CreateRegion("cells", visibility.Line(0, 99), "val")
	blocks := cells.PartitionEqual("blocks", 4)

	// Phase 1: initialize each block in parallel (disjoint writes: the
	// analysis finds no dependences between these four launches).
	for i := 0; i < blocks.Len(); i++ {
		rt.Launch(visibility.TaskSpec{
			Name:     fmt.Sprintf("init[%d]", i),
			Accesses: []visibility.Access{visibility.Write(blocks.Sub(i), "val")},
			Kernel: visibility.Kernel{
				Write: func(_ int, p visibility.Point, _ float64) float64 {
					return float64(p.C[0])
				},
			},
		})
	}

	// Phase 2: an aliased window spanning blocks 1-2 receives a +10
	// reduction. It depends on init[1] and init[2], but not 0 or 3.
	window := cells.Partition("window", []visibility.IndexSpace{
		visibility.Line(30, 69),
	})
	rt.Launch(visibility.TaskSpec{
		Name:     "bump",
		Accesses: []visibility.Access{visibility.Reduce(visibility.OpSum, window.Sub(0), "val")},
		Kernel: visibility.Kernel{
			Reduce: func(_ int, _ visibility.Point) float64 { return 10 },
		},
	})

	// Phase 3: read everything back coherently.
	snap := rt.Read(cells, "val")
	var sum float64
	snap.Each(func(_ visibility.Point, v float64) { sum += v })

	want := float64(99*100/2 + 40*10)
	if sum != want {
		log.Fatalf("sum = %v, want %v", sum, want)
	}
	v35, _ := snap.Get(visibility.Pt(35))
	v5, _ := snap.Get(visibility.Pt(5))
	fmt.Printf("cells[5] = %v (initialized)\n", v5)
	fmt.Printf("cells[35] = %v (initialized + reduction)\n", v35)
	fmt.Printf("sum = %v ✓\n", sum)
	fmt.Printf("analysis: %s, %d launches analyzed\n", "raycast", rt.Stats(cells).Launches)
}
